#include <gtest/gtest.h>

#include "eurochip/edu/pipeline.hpp"
#include "eurochip/edu/productivity.hpp"
#include "eurochip/edu/tiers.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::edu {
namespace {

// --- productivity -----------------------------------------------------------

TEST(ProductivityTest, GatesPerLineInPaperRange) {
  // Paper: "A single line of RTL code typically generates only 5 to 20
  // gates." Measure over the catalog; the mean must land in that band.
  const auto node = pdk::standard_node("sky130ish").value();
  const auto lib = pdk::build_library(node);
  double sum = 0.0;
  int count = 0;
  for (auto& e : rtl::designs::standard_catalog()) {
    const auto aig = synth::elaborate(e.module);
    auto mapped = synth::map_to_library(synth::optimize(*aig, 2), lib);
    ASSERT_TRUE(mapped.ok()) << e.name;
    const auto p = measure_frontend(e.module, *mapped);
    EXPECT_GT(p.gates_per_line, 0.5) << e.name;
    EXPECT_LT(p.gates_per_line, 200.0) << e.name;
    sum += p.gates_per_line;
    ++count;
  }
  const double mean = sum / count;
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 40.0);
}

TEST(ProductivityTest, SoftwareReferencesOrdered) {
  const auto refs = software_references();
  ASSERT_GE(refs.size(), 3u);
  // Python's expansion dwarfs hardware's gates-per-line (paper's point).
  double python = 0.0;
  for (const auto& r : refs) {
    if (std::string(r.language) == "python") python = r.instructions_per_line;
  }
  EXPECT_GE(python, 1000.0);
}

TEST(ProductivityTest, BackendSetupScalesWithNode) {
  const BackendSetupModel model;
  const auto open130 = pdk::standard_node("sky130ish").value();
  const auto com7 = pdk::standard_node("commercial7").value();
  const double d_open = model.setup_days(open130, 0.0, false);
  const double d_com = model.setup_days(com7, 0.0, false);
  EXPECT_GT(d_com, d_open);  // NDA overhead + more layers
}

TEST(ProductivityTest, ExperienceAndTemplatesReduceSetup) {
  const BackendSetupModel model;
  const auto node = pdk::standard_node("sky130ish").value();
  const double novice = model.setup_days(node, 0.0, false);
  const double expert = model.setup_days(node, 1.0, false);
  const double templated = model.setup_days(node, 0.0, true);
  EXPECT_LT(expert, novice);
  EXPECT_NEAR(expert, novice * model.experience_factor, 1e-9);
  EXPECT_NEAR(templated, novice * model.template_factor, 1e-9);
}

// --- pipeline ----------------------------------------------------------------

PipelineParams base_params() { return PipelineParams{}; }

TEST(PipelineTest, DeterministicForSeed) {
  TalentPipeline a(base_params(), 5);
  TalentPipeline b(base_params(), 5);
  const auto ra = a.run(10);
  const auto rb = b.run(10);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].msc_graduates, rb[i].msc_graduates);
  }
}

TEST(PipelineTest, BaselineStagnatesOrDeclines) {
  // Paper: graduates stagnate/decline without action (software pull).
  TalentPipeline p(base_params(), 7);
  const auto series = p.run(15);
  // Compare the average of the first vs last 3 settled years (skip the
  // 5-year pipeline fill).
  double early = 0.0;
  double late = 0.0;
  for (int i = 6; i < 9; ++i) early += series[i].msc_graduates;
  for (int i = 12; i < 15; ++i) late += series[i].msc_graduates;
  EXPECT_LT(late, early * 1.02);  // no growth
}

TEST(PipelineTest, InterventionsGrowGraduates) {
  TalentPipeline baseline(base_params(), 11);
  TalentPipeline boosted(base_params(), 11);
  boosted.add_intervention(low_barrier_programs());
  boosted.add_intervention(information_campaigns());
  boosted.add_intervention(coordinated_funding());
  const auto rb = baseline.run(15);
  const auto ri = boosted.run(15);
  EXPECT_GT(TalentPipeline::total_designers(ri),
            1.3 * TalentPipeline::total_designers(rb));
}

TEST(PipelineTest, InterventionStartYearRespected) {
  Intervention late = information_campaigns();
  late.start_year = 10;
  TalentPipeline p(base_params(), 3);
  p.add_intervention(late);
  TalentPipeline q(base_params(), 3);
  const auto rp = p.run(10);
  const auto rq = q.run(10);
  for (std::size_t i = 0; i < rp.size(); ++i) {
    EXPECT_DOUBLE_EQ(rp[i].bsc_entrants, rq[i].bsc_entrants) << i;
  }
}

TEST(PipelineTest, DiversityBoostRaisesShare) {
  TalentPipeline p(base_params(), 13);
  p.add_intervention(low_barrier_programs());
  const auto series = p.run(5);
  EXPECT_GT(series.back().diversity_share, base_params().diversity_share);
}

TEST(PipelineTest, PipelineDelaysAreVisible) {
  // The first MSc graduates appear only after BSc (3y) + MSc (2y).
  TalentPipeline p(base_params(), 17);
  const auto series = p.run(8);
  EXPECT_DOUBLE_EQ(series[0].msc_graduates, 0.0);
  EXPECT_DOUBLE_EQ(series[4].msc_graduates, 0.0);
  EXPECT_GT(series[6].msc_graduates, 0.0);
}

// --- tiers ---------------------------------------------------------------

TEST(TiersTest, ThreePathwaysMatchingPaper) {
  const auto pathways = recommended_pathways();
  ASSERT_EQ(pathways.size(), 3u);
  EXPECT_EQ(pathway_for(LearnerTier::kBeginner)->node_name, "sky130ish");
  EXPECT_EQ(pathway_for(LearnerTier::kIntermediate)->node_name, "ihp130ish");
  EXPECT_EQ(pathway_for(LearnerTier::kAdvanced)->node_name, "commercial28");
  EXPECT_FALSE(pathway_for(LearnerTier::kBeginner)->needs_commercial_access);
  EXPECT_TRUE(pathway_for(LearnerTier::kAdvanced)->needs_commercial_access);
}

TEST(TiersTest, MatchedPathwayBeatsMismatched) {
  const auto advanced = pathway_for(LearnerTier::kAdvanced).value();
  const auto beginner = pathway_for(LearnerTier::kBeginner).value();
  // Beginner on the advanced pathway: heavily penalized.
  EXPECT_LT(success_probability(LearnerTier::kBeginner, advanced),
            success_probability(LearnerTier::kBeginner, beginner));
  // Advanced learner on own pathway beats beginner on it.
  EXPECT_GT(success_probability(LearnerTier::kAdvanced, advanced),
            success_probability(LearnerTier::kBeginner, advanced));
}

TEST(TiersTest, SuccessProbabilityBounded) {
  for (const auto& pathway : recommended_pathways()) {
    for (LearnerTier t : {LearnerTier::kBeginner, LearnerTier::kIntermediate,
                          LearnerTier::kAdvanced}) {
      const double p = success_probability(t, pathway);
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST(TiersTest, TypicalProfilesRespectAccessReality) {
  // Beginner (high school) cannot access NDA nodes even directly.
  const auto node28 = pdk::standard_node("commercial28").value();
  EXPECT_FALSE(
      pdk::check_access(node28, typical_profile(LearnerTier::kBeginner))
          .granted);
  // Advanced PhD profile with one tape-out: ok for 28nm (needs 1), not 2nm.
  EXPECT_TRUE(
      pdk::check_access(node28, typical_profile(LearnerTier::kAdvanced))
          .granted);
  const auto node2 = pdk::standard_node("commercial2").value();
  EXPECT_FALSE(
      pdk::check_access(node2, typical_profile(LearnerTier::kAdvanced))
          .granted);
}

TEST(TiersTest, TierNames) {
  EXPECT_STREQ(to_string(LearnerTier::kBeginner), "beginner");
  EXPECT_STREQ(to_string(LearnerTier::kAdvanced), "advanced");
}

}  // namespace
}  // namespace eurochip::edu
