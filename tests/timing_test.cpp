#include <gtest/gtest.h>

#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/placer.hpp"
#include "eurochip/route/router.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"
#include "eurochip/timing/sta.hpp"

namespace eurochip::timing {
namespace {

struct Mapped {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
};

Mapped make_mapped(const rtl::Module& m,
                   const std::string& node_name = "sky130ish") {
  Mapped d;
  d.node = pdk::standard_node(node_name).value();
  d.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(d.node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *d.lib);
  d.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  return d;
}

TEST(StaTest, ReportsEndpointsAndPositivePathDelay) {
  const auto m = rtl::designs::alu(8);
  const Mapped d = make_mapped(m);
  const auto report = analyze(*d.nl, d.node);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(report->num_endpoints, 0u);
  EXPECT_GT(report->critical_path_delay_ps, 0.0);
  EXPECT_FALSE(report->critical_path.empty());
}

TEST(StaTest, GenerousClockMeetsTiming) {
  const auto m = rtl::designs::counter(8);
  const Mapped d = make_mapped(m);
  StaOptions opt;
  opt.clock_period_ps = 1e6;  // 1 us: trivially met
  const auto report = analyze(*d.nl, d.node, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->met());
  EXPECT_GT(report->wns_ps, 0.0);
  EXPECT_DOUBLE_EQ(report->tns_ps, 0.0);
}

TEST(StaTest, ImpossibleClockFailsTiming) {
  const auto m = rtl::designs::multiplier(8);
  const Mapped d = make_mapped(m);
  StaOptions opt;
  opt.clock_period_ps = 1.0;  // 1 ps: impossible
  const auto report = analyze(*d.nl, d.node, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->met());
  EXPECT_LT(report->wns_ps, 0.0);
  EXPECT_LT(report->tns_ps, 0.0);
}

TEST(StaTest, SlackMonotoneInClockPeriod) {
  const auto m = rtl::designs::fir_filter(8, 4);
  const Mapped d = make_mapped(m);
  double prev_wns = -1e18;
  for (double period : {100.0, 1000.0, 5000.0, 20000.0}) {
    StaOptions opt;
    opt.clock_period_ps = period;
    const auto report = analyze(*d.nl, d.node, opt);
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->wns_ps, prev_wns);
    prev_wns = report->wns_ps;
  }
}

TEST(StaTest, FmaxIndependentOfAnalysisClock) {
  const auto m = rtl::designs::alu(8);
  const Mapped d = make_mapped(m);
  StaOptions a;
  a.clock_period_ps = 1000.0;
  StaOptions b;
  b.clock_period_ps = 9000.0;
  const auto ra = analyze(*d.nl, d.node, a);
  const auto rb = analyze(*d.nl, d.node, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_NEAR(ra->fmax_mhz, rb->fmax_mhz, ra->fmax_mhz * 0.01);
}

TEST(StaTest, FasterNodesAreFaster) {
  const auto m = rtl::designs::alu(8);
  const Mapped d130 = make_mapped(m, "sky130ish");
  const Mapped d7 = make_mapped(m, "commercial7");
  const auto r130 = analyze(*d130.nl, d130.node);
  const auto r7 = analyze(*d7.nl, d7.node);
  ASSERT_TRUE(r130.ok());
  ASSERT_TRUE(r7.ok());
  EXPECT_GT(r7->fmax_mhz, 3.0 * r130->fmax_mhz);
}

TEST(StaTest, PostLayoutSlowerThanWireloadOnLargeDesign) {
  const auto m = rtl::designs::mini_cpu_datapath(8);
  const Mapped d = make_mapped(m);
  auto placed = place::place(*d.nl, d.node);
  ASSERT_TRUE(placed.ok());
  auto routed = route::route(*placed, d.node);
  ASSERT_TRUE(routed.ok());
  const auto pre = analyze(*d.nl, d.node);
  const auto post = analyze(*d.nl, d.node, {}, &*routed);
  ASSERT_TRUE(pre.ok());
  ASSERT_TRUE(post.ok());
  // Post-layout includes real wire RC; it should not be dramatically faster.
  EXPECT_GT(post->critical_path_delay_ps,
            0.5 * pre->critical_path_delay_ps);
}

TEST(StaTest, EndpointsSortedBySlack) {
  const auto m = rtl::designs::alu(8);
  const Mapped d = make_mapped(m);
  const auto report = analyze(*d.nl, d.node);
  ASSERT_TRUE(report.ok());
  for (std::size_t i = 1; i < report->endpoints.size(); ++i) {
    EXPECT_LE(report->endpoints[i - 1].slack_ps,
              report->endpoints[i].slack_ps);
  }
  EXPECT_DOUBLE_EQ(report->endpoints.front().slack_ps, report->wns_ps);
}

TEST(StaTest, CriticalPathArrivalsMonotone) {
  const auto m = rtl::designs::multiplier(6);
  const Mapped d = make_mapped(m);
  const auto report = analyze(*d.nl, d.node);
  ASSERT_TRUE(report.ok());
  for (std::size_t i = 1; i < report->critical_path.size(); ++i) {
    EXPECT_GE(report->critical_path[i].arrival_ps,
              report->critical_path[i - 1].arrival_ps - 1e-9);
  }
}

TEST(StaTest, HoldCleanWithoutSkew) {
  // With zero clock skew, any real gate path beats the (small) hold time.
  const auto m = rtl::designs::mini_cpu_datapath(8);
  const Mapped d = make_mapped(m);
  const auto report = analyze(*d.nl, d.node);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->hold_met());
  EXPECT_GT(report->worst_hold_slack_ps, 0.0);
}

TEST(StaTest, LargeSkewCreatesHoldViolations) {
  // A shift register's reg-to-reg paths are single wires: huge injected
  // skew must produce hold violations.
  const auto m = rtl::designs::shift_register(8, 4);
  const Mapped d = make_mapped(m);
  StaOptions opt;
  opt.clock_skew_ps = 1e5;
  const auto report = analyze(*d.nl, d.node, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->hold_met());
  EXPECT_LT(report->worst_hold_slack_ps, 0.0);
}

TEST(StaTest, SkewTightensSetup) {
  const auto m = rtl::designs::alu(8);
  const Mapped d = make_mapped(m);
  StaOptions no_skew;
  StaOptions skewed;
  skewed.clock_skew_ps = 200.0;
  const auto a = analyze(*d.nl, d.node, no_skew);
  const auto b = analyze(*d.nl, d.node, skewed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(b->wns_ps, a->wns_ps);
}

TEST(StaTest, HoldSlackZeroWithoutRegToRegPaths) {
  const auto m = rtl::designs::adder(8);  // combinational
  const Mapped d = make_mapped(m);
  const auto report = analyze(*d.nl, d.node);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->hold_met());
  EXPECT_DOUBLE_EQ(report->worst_hold_slack_ps, 0.0);
}

TEST(StaTest, RoutedWireDelayUsesMultiLayerAverage) {
  // One inverter driving a primary output over a routed net of known
  // length. Pins the Elmore wire delay against a hand-computed value using
  // the arithmetic mean of ALL metal layers' per-um parasitics — the
  // router spreads tracks across the whole stack, so front()-only RC
  // (the old behavior) systematically overestimated delay.
  const auto node = pdk::standard_node("sky130ish").value();
  ASSERT_GE(node.layers.size(), 2u);
  const auto lib = pdk::build_library(node);
  netlist::Netlist nl(&lib, "pin");
  const auto in = nl.add_input("a");
  const auto inv_idx = lib.smallest_for(netlist::CellFn::kInv);
  ASSERT_TRUE(inv_idx.has_value());
  const auto cell =
      nl.add_cell("u1", static_cast<std::uint32_t>(*inv_idx), {in});
  ASSERT_TRUE(cell.ok());
  const auto out = nl.cell(*cell).output;
  nl.add_output("y", out);
  ASSERT_TRUE(nl.check().ok());

  // Synthetic routing: the output net is routed with exactly 100 um of
  // wire (1 dbu = 1 nm). placed stays null, so analyze skips the
  // netlist-identity check.
  route::RoutedDesign routing;
  routing.nets.resize(nl.num_nets());
  routing.nets[out.value].routed = true;
  routing.nets[out.value].wirelength_dbu = 100000;

  StaOptions opt;
  const auto report = analyze(nl, node, opt, &routing);
  ASSERT_TRUE(report.ok()) << report.status().to_string();

  const double len_um = 100.0;
  double avg_res = 0.0, avg_cap = 0.0;
  for (const auto& layer : node.layers) {
    avg_res += layer.res_ohm_per_um;
    avg_cap += layer.cap_ff_per_um;
  }
  avg_res /= static_cast<double>(node.layers.size());
  avg_cap /= static_cast<double>(node.layers.size());
  const double wire_cap_ff = avg_cap * len_um;
  const double res_kohm = avg_res * len_um * 1e-3;
  const double load_ff = wire_cap_ff + opt.primary_output_load_ff;
  const auto& lc = lib.cell(*inv_idx);
  const double gate_ps = lc.delay_ps.lookup(opt.input_slew_ps, load_ff);
  const double wire_ps =
      res_kohm * (wire_cap_ff / 2.0 + (load_ff - wire_cap_ff));
  const double expected_ps = gate_ps + wire_ps;

  EXPECT_NEAR(report->critical_path_delay_ps, expected_ps,
              1e-9 * expected_ps);

  // Guard that the test pins the fix, not a coincidence: the bottom-layer-
  // only model must predict a different (larger) delay on this node.
  const auto& m1 = node.layers.front();
  EXPECT_GT(m1.res_ohm_per_um, avg_res);
}

TEST(StaTest, PurelyCombinationalDesignHasOutputsAsEndpoints) {
  const auto m = rtl::designs::adder(8);
  const Mapped d = make_mapped(m);
  const auto report = analyze(*d.nl, d.node);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_endpoints, d.nl->outputs().size());
}

}  // namespace
}  // namespace eurochip::timing
