#include <gtest/gtest.h>

#include "eurochip/core/campaign.hpp"
#include "eurochip/core/enablement.hpp"
#include "eurochip/rtl/designs.hpp"

namespace eurochip::core {
namespace {

UniversityProfile typical_university() {
  UniversityProfile u;
  u.name = "TU Test";
  u.support_staff_fte = 0.5;
  u.experience = 0.2;
  u.technologies_needed = 2;
  u.legal.affiliation = pdk::Affiliation::kUniversity;
  return u;
}

EnablementHub make_hub() {
  EnablementHub hub(pdk::standard_registry(), {});
  for (const char* n :
       {"sky130ish", "ihp130ish", "gf180ish", "commercial28", "commercial7"}) {
    EXPECT_TRUE(hub.enable_technology(n).ok()) << n;
  }
  return hub;
}

// --- enablement tasks / DIY -------------------------------------------------

TEST(EnablementTest, CatalogCoversPaperTaskList) {
  const auto tasks = standard_task_catalog();
  EXPECT_GE(tasks.size(), 7u);
  bool has_flow_automation = false;
  for (const auto& t : tasks) {
    EXPECT_GT(t.setup_person_days, 0.0) << t.name;
    EXPECT_GE(t.annual_person_days, 0.0) << t.name;
    if (t.name == "flow_automation") has_flow_automation = true;
  }
  EXPECT_TRUE(has_flow_automation);
}

TEST(EnablementTest, DiySetupSubstantialForNovice) {
  const auto est = estimate_diy(typical_university(), false);
  EXPECT_GT(est.setup_person_days, 60.0);   // months of person-effort
  EXPECT_GT(est.annual_person_days, 20.0);  // recurring burden
  EXPECT_GT(est.calendar_days, est.setup_person_days);  // 0.5 FTE stretches it
}

TEST(EnablementTest, TemplatesReduceDiyEffort) {
  const auto without = estimate_diy(typical_university(), false);
  const auto with = estimate_diy(typical_university(), true);
  EXPECT_LT(with.setup_person_days, without.setup_person_days);
}

TEST(EnablementTest, ExperienceReducesDiyEffort) {
  UniversityProfile novice = typical_university();
  UniversityProfile veteran = typical_university();
  veteran.experience = 1.0;
  EXPECT_LT(estimate_diy(veteran, false).setup_person_days,
            estimate_diy(novice, false).setup_person_days);
}

TEST(EnablementTest, MoreTechnologiesCostMore) {
  UniversityProfile one = typical_university();
  one.technologies_needed = 1;
  UniversityProfile three = typical_university();
  three.technologies_needed = 3;
  EXPECT_GT(estimate_diy(three, false).setup_person_days,
            estimate_diy(one, false).setup_person_days);
}

// --- hub ------------------------------------------------------------------

TEST(HubTest, EnableTechnologyOnceOnly) {
  EnablementHub hub(pdk::standard_registry(), {});
  EXPECT_TRUE(hub.enable_technology("sky130ish").ok());
  EXPECT_FALSE(hub.enable_technology("sky130ish").ok());
  EXPECT_FALSE(hub.enable_technology("no-such-node").ok());
  EXPECT_EQ(hub.enabled_nodes().size(), 1u);
  EXPECT_GT(hub.hub_setup_person_days(), 0.0);
}

TEST(HubTest, TieredAccessRestrictsBeginners) {
  EnablementHub hub = make_hub();
  const std::size_t member = hub.add_member(typical_university());
  const auto beginner_nodes =
      hub.accessible_nodes(member, edu::LearnerTier::kBeginner);
  for (const auto& n : beginner_nodes) {
    EXPECT_TRUE(hub.registry().find(n)->is_open()) << n;
  }
  const auto advanced_nodes =
      hub.accessible_nodes(member, edu::LearnerTier::kAdvanced);
  EXPECT_GT(advanced_nodes.size(), beginner_nodes.size());
}

TEST(HubTest, HubWaivesNdaButNotExportControl) {
  EnablementHub hub = make_hub();
  UniversityProfile restricted = typical_university();
  restricted.legal.export_group = pdk::ExportGroup::kRestricted;
  const std::size_t member = hub.add_member(restricted);
  // NDA node fine through the hub...
  EXPECT_TRUE(hub.check_member_access(member, edu::LearnerTier::kAdvanced,
                                      "commercial28")
                  .ok());
  // ...but export-controlled node still denied.
  const auto s = hub.check_member_access(member, edu::LearnerTier::kAdvanced,
                                         "commercial7");
  EXPECT_EQ(s.code(), util::ErrorCode::kPermissionDenied);
}

TEST(HubTest, NotEnabledNodeNotAccessible) {
  EnablementHub hub(pdk::standard_registry(), {});
  ASSERT_TRUE(hub.enable_technology("sky130ish").ok());
  const std::size_t member = hub.add_member(typical_university());
  EXPECT_EQ(hub.check_member_access(member, edu::LearnerTier::kAdvanced,
                                    "commercial28")
                .code(),
            util::ErrorCode::kNotFound);
}

TEST(HubTest, AmortizationBeatsDiyForManyMembers) {
  EnablementHub hub = make_hub();
  const auto rep = hub.amortization(typical_university(), 20, false);
  EXPECT_GT(rep.savings_factor, 3.0);
  EXPECT_LT(rep.hub_total_days, rep.diy_total_days);
}

TEST(HubTest, MemberOnboardingFastComparedToDiy) {
  EnablementHub hub = make_hub();
  const std::size_t member = hub.add_member(typical_university());
  const auto diy = estimate_diy(typical_university(), false);
  EXPECT_LT(hub.member_calendar_days(member), diy.calendar_days / 10.0);
}

TEST(HubQueueTest, FcfsRespectsCapacity) {
  EnablementHub::Options opt;
  opt.job_capacity = 2;
  EnablementHub hub(pdk::standard_registry(), opt);
  // Three 10h jobs submitted together on 2 servers: third waits 10h.
  std::vector<EnablementHub::Job> jobs = {
      {0, 0.0, 10.0}, {1, 0.0, 10.0}, {2, 0.0, 10.0}};
  const auto rep = hub.simulate_queue(jobs);
  EXPECT_DOUBLE_EQ(rep.outcomes[0].wait_h, 0.0);
  EXPECT_DOUBLE_EQ(rep.outcomes[1].wait_h, 0.0);
  EXPECT_DOUBLE_EQ(rep.outcomes[2].wait_h, 10.0);
  EXPECT_DOUBLE_EQ(rep.makespan_h, 20.0);
  EXPECT_NEAR(rep.utilization, 30.0 / 40.0, 1e-9);
}

TEST(HubQueueTest, MoreCapacityReducesWait) {
  std::vector<EnablementHub::Job> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back({0, static_cast<double>(i % 4), 5.0});
  }
  EnablementHub::Options small;
  small.job_capacity = 2;
  EnablementHub::Options large;
  large.job_capacity = 8;
  EnablementHub hub_small(pdk::standard_registry(), small);
  EnablementHub hub_large(pdk::standard_registry(), large);
  EXPECT_GT(hub_small.simulate_queue(jobs).mean_wait_h,
            hub_large.simulate_queue(jobs).mean_wait_h);
}

TEST(HubQueueTest, EmptyQueue) {
  EnablementHub hub(pdk::standard_registry(), {});
  const auto rep = hub.simulate_queue({});
  EXPECT_DOUBLE_EQ(rep.mean_wait_h, 0.0);
  EXPECT_DOUBLE_EQ(rep.makespan_h, 0.0);
}

// --- adoption simulation ------------------------------------------------------

TEST(AdoptionTest, SeriesShapesAreSane) {
  AdoptionParams params;
  const auto series = simulate_adoption(params, typical_university());
  ASSERT_EQ(series.size(), static_cast<std::size_t>(params.years));
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].members, series[i - 1].members);
    EXPECT_GE(series[i].technologies, series[i - 1].technologies);
    EXPECT_GE(series[i].hub_person_days, series[i - 1].hub_person_days);
    EXPECT_GE(series[i].campaigns_run, series[i - 1].campaigns_run);
  }
}

TEST(AdoptionTest, SavingsGrowWithMembership) {
  AdoptionParams params;
  params.years = 12;
  const auto series = simulate_adoption(params, typical_university());
  EXPECT_GT(series.back().savings_factor, series.front().savings_factor);
  EXPECT_GT(series.back().savings_factor, 3.0);
  EXPECT_LT(series.back().hub_person_days, series.back().diy_person_days);
}

TEST(AdoptionTest, NoGrowthStillPositiveSavings) {
  AdoptionParams params;
  params.member_growth_per_year = 0.0;
  params.initial_members = 10;
  const auto series = simulate_adoption(params, typical_university());
  EXPECT_EQ(series.back().members, 10);
  EXPECT_GT(series.back().savings_factor, 1.0);
}

TEST(AdoptionTest, Deterministic) {
  AdoptionParams params;
  const auto a = simulate_adoption(params, typical_university());
  const auto b = simulate_adoption(params, typical_university());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].hub_person_days, b[i].hub_person_days);
    EXPECT_DOUBLE_EQ(a[i].diy_person_days, b[i].diy_person_days);
  }
}

// --- campaigns --------------------------------------------------------------

TEST(CampaignTest, HubCampaignRunsRealFlow) {
  EnablementHub hub = make_hub();
  const std::size_t member = hub.add_member(typical_university());
  const auto design = rtl::designs::counter(8);
  CampaignConfig cfg;
  cfg.node_name = "sky130ish";
  cfg.tier = edu::LearnerTier::kIntermediate;
  const auto report = run_campaign(hub, member, design, cfg);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report->access_granted);
  EXPECT_GT(report->ppa.cell_count, 0u);
  EXPECT_GT(report->ppa.fmax_mhz, 0.0);
  EXPECT_GT(report->die_area_mm2, 0.0);
  EXPECT_GT(report->mpw_cost_keur, 0.0);
  EXPECT_GT(report->turnaround_months, 0.0);
}

TEST(CampaignTest, BeginnerDeniedCommercialNode) {
  EnablementHub hub = make_hub();
  const std::size_t member = hub.add_member(typical_university());
  const auto design = rtl::designs::counter(8);
  CampaignConfig cfg;
  cfg.node_name = "commercial28";
  cfg.tier = edu::LearnerTier::kBeginner;
  const auto report = run_campaign(hub, member, design, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::ErrorCode::kPermissionDenied);
}

TEST(CampaignTest, DiyDeniedWithoutNda) {
  const auto design = rtl::designs::counter(8);
  CampaignConfig cfg;
  cfg.node_name = "commercial28";
  cfg.tier = edu::LearnerTier::kAdvanced;
  const auto report = run_campaign_diy(typical_university(), design, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::ErrorCode::kPermissionDenied);
}

TEST(CampaignTest, HubFasterThanDiy) {
  EnablementHub hub = make_hub();
  const std::size_t member = hub.add_member(typical_university());
  const auto design = rtl::designs::counter(8);
  CampaignConfig cfg;
  cfg.node_name = "sky130ish";
  const auto via_hub = run_campaign(hub, member, design, cfg);
  cfg.via_hub = false;
  const auto diy = run_campaign_diy(typical_university(), design, cfg);
  ASSERT_TRUE(via_hub.ok());
  ASSERT_TRUE(diy.ok());
  EXPECT_LT(via_hub->enablement_days, diy->enablement_days);
  EXPECT_LT(via_hub->total_months, diy->total_months);
}

TEST(CampaignTest, SponsorshipZeroesCost) {
  EnablementHub hub = make_hub();
  const std::size_t member = hub.add_member(typical_university());
  const auto design = rtl::designs::counter(8);
  CampaignConfig cfg;
  cfg.node_name = "sky130ish";
  cfg.mpw_program = econ::sponsored_open_mpw();
  const auto report = run_campaign(hub, member, design, cfg);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mpw_cost_keur, 0.0);
}

TEST(CampaignTest, ScheduleFeasibilityReported) {
  EnablementHub hub = make_hub();
  const std::size_t member = hub.add_member(typical_university());
  const auto design = rtl::designs::counter(8);
  CampaignConfig cfg;
  cfg.node_name = "sky130ish";
  cfg.available_months = 3.0;  // too short for any shuttle
  const auto tight = run_campaign(hub, member, design, cfg);
  ASSERT_TRUE(tight.ok());
  EXPECT_FALSE(tight->fits_schedule);
  cfg.available_months = 24.0;
  const auto roomy = run_campaign(hub, member, design, cfg);
  ASSERT_TRUE(roomy.ok());
  EXPECT_TRUE(roomy->fits_schedule);
}

}  // namespace
}  // namespace eurochip::core
