// Chaos suite: the fault-injection framework (util::FaultInjector) and the
// hub's resilience machinery under injected failure — exception isolation,
// admission control / load shedding, circuit breakers, checkpoint-resume
// retries, and the structured retry taxonomy.
//
// Every suite here is named Chaos* so CI can select the whole file with
// one regex; the concurrency-sensitive tests run under both TSan and
// ASan+UBSan in dedicated jobs. Each test installs its injector through
// FaultInjector::ScopedInstall so no plan leaks across tests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "eurochip/flow/cache.hpp"
#include "eurochip/hub/job.hpp"
#include "eurochip/hub/server.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/fault.hpp"
#include "eurochip/util/result.hpp"

namespace eurochip::hub {
namespace {

using util::ErrorCode;
using util::FaultInjector;
using util::FaultKind;
using util::FaultRule;

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

FaultRule rule(std::string site, FaultKind kind, double probability = 1.0) {
  FaultRule r;
  r.site = std::move(site);
  r.kind = kind;
  r.probability = probability;
  return r;
}

flow::FlowConfig open_config() {
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.quality = flow::FlowQuality::kOpen;
  return cfg;
}

// --- FaultInjector engine -------------------------------------------------

TEST(ChaosFaultInjectorTest, DisabledByDefaultEverySitePasses) {
  ASSERT_EQ(FaultInjector::installed(), nullptr);
  const auto guarded = []() -> util::Status {
    EUROCHIP_FAULT_SITE("chaos.unit.site");
    return util::Status::Ok();
  };
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(guarded().ok());
}

TEST(ChaosFaultInjectorTest, DeterministicDecisionSequenceForSameSeed) {
  const auto drive = [](std::uint64_t seed) {
    FaultInjector fi(seed);
    fi.add_rule(rule("s", FaultKind::kErrorStatus, 0.4));
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!fi.check("s").ok());
    return fired;
  };
  EXPECT_EQ(drive(7), drive(7));
  EXPECT_NE(drive(7), drive(8)) << "different seeds, different plans";
}

TEST(ChaosFaultInjectorTest, PerSiteStreamsAreIndependent) {
  // Interleaving extra hits at another site must not shift this site's
  // decision sequence (per-site RNG streams).
  const auto drive = [](bool interleave) {
    FaultInjector fi(11);
    fi.add_rule(rule("a", FaultKind::kErrorStatus, 0.5));
    std::vector<bool> fired;
    for (int i = 0; i < 100; ++i) {
      if (interleave) (void)fi.check("b");
      fired.push_back(!fi.check("a").ok());
    }
    return fired;
  };
  EXPECT_EQ(drive(false), drive(true));
}

TEST(ChaosFaultInjectorTest, MaxTriggersBoundsTheBudget) {
  FaultInjector fi(1);
  FaultRule r = rule("s", FaultKind::kErrorStatus);
  r.max_triggers = 2;
  fi.add_rule(r);
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += fi.check("s").ok() ? 0 : 1;
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fi.site_stats("s").hits, 10u);
  EXPECT_EQ(fi.site_stats("s").triggered, 2u);
}

TEST(ChaosFaultInjectorTest, SkipFirstArmsAfterNHits) {
  FaultInjector fi(1);
  FaultRule r = rule("s", FaultKind::kErrorStatus);
  r.skip_first = 3;
  fi.add_rule(r);
  EXPECT_TRUE(fi.check("s").ok());
  EXPECT_TRUE(fi.check("s").ok());
  EXPECT_TRUE(fi.check("s").ok());
  EXPECT_FALSE(fi.check("s").ok()) << "fourth hit fires";
}

TEST(ChaosFaultInjectorTest, ProbabilityZeroNeverFiresButCountsHits) {
  FaultInjector fi(1);
  fi.add_rule(rule("s", FaultKind::kErrorStatus, 0.0));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(fi.check("s").ok());
  EXPECT_EQ(fi.site_stats("s").hits, 50u);
  EXPECT_EQ(fi.total_triggered(), 0u);
}

TEST(ChaosFaultInjectorTest, FaultKindsProduceTheirContracts) {
  FaultInjector fi(1);
  fi.add_rule(rule("err", FaultKind::kErrorStatus));
  fi.add_rule(rule("res", FaultKind::kResourceExhausted));
  fi.add_rule(rule("boom", FaultKind::kThrow));
  FaultRule d = rule("slow", FaultKind::kDelay);
  d.delay_ms = 20.0;
  fi.add_rule(d);

  EXPECT_EQ(fi.check("err").code(), ErrorCode::kInternal);
  EXPECT_EQ(fi.check("res").code(), ErrorCode::kResourceExhausted);
  EXPECT_THROW((void)fi.check("boom"), std::logic_error);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(fi.check("slow").ok()) << "delay passes after stalling";
  const double elapsed =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 15.0);
}

TEST(ChaosFaultInjectorTest, PrefixWildcardMatchesSiteFamily) {
  FaultInjector fi(1);
  fi.add_rule(rule("flow.step.*", FaultKind::kErrorStatus));
  EXPECT_FALSE(fi.check("flow.step.route").ok());
  EXPECT_FALSE(fi.check("flow.step.place").ok());
  EXPECT_TRUE(fi.check("gds.read").ok());
  EXPECT_TRUE(fi.check("flow.ste").ok()) << "prefix is the full pattern stem";
  const auto stats = fi.stats_by_prefix("flow.step.");
  EXPECT_EQ(stats.size(), 2u);
}

TEST(ChaosFaultInjectorTest, ScopedInstallRestoresPreviousInjector) {
  FaultInjector outer(1);
  {
    FaultInjector::ScopedInstall install_outer(outer);
    EXPECT_EQ(FaultInjector::installed(), &outer);
    {
      FaultInjector inner(2);
      FaultInjector::ScopedInstall install_inner(inner);
      EXPECT_EQ(FaultInjector::installed(), &inner);
    }
    EXPECT_EQ(FaultInjector::installed(), &outer);
  }
  EXPECT_EQ(FaultInjector::installed(), nullptr);
}

// --- Exception isolation --------------------------------------------------

TEST(ChaosIsolationTest, ThrowingWorkFunctionFailsJobNotProcess) {
  JobServer server({});
  JobSpec spec;
  spec.name = "bomber";
  spec.work = [](JobContext&) -> util::Status {
    throw std::logic_error("deliberate chaos");
  };
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_EQ(rec->status.code(), ErrorCode::kInternal);
  EXPECT_NE(rec->status.message().find("deliberate chaos"), std::string::npos);
  EXPECT_EQ(server.metrics().counter("jobs_exceptions_isolated"), 1u);

  // The server keeps running: the next job on the same workers succeeds.
  JobSpec ok;
  ok.name = "survivor";
  ok.work = [](JobContext&) { return util::Status::Ok(); };
  const auto id2 = server.submit(std::move(ok));
  ASSERT_TRUE(id2.ok());
  const auto rec2 = server.wait(*id2);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->state, JobState::kSucceeded);
}

TEST(ChaosIsolationTest, ThrownFailureIsRetryableAndCanRecover) {
  JobServer server({});
  JobSpec spec;
  spec.name = "throws-once";
  spec.max_attempts = 3;
  spec.backoff_base_ms = 1.0;
  spec.backoff_cap_ms = 2.0;
  spec.work = [](JobContext& ctx) -> util::Status {
    if (ctx.attempt == 1) throw std::runtime_error("first try explodes");
    EXPECT_EQ(ctx.last_error.code(), ErrorCode::kInternal);
    return util::Status::Ok();
  };
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kSucceeded);
  EXPECT_EQ(rec->attempts, 2);
}

TEST(ChaosIsolationTest, InjectedThrowInsideFlowStepIsContained) {
  FaultInjector fi(3);
  FaultRule r = rule("flow.step.place", FaultKind::kThrow);
  r.max_triggers = 1;
  fi.add_rule(r);
  FaultInjector::ScopedInstall install(fi);

  JobServer server({});
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(4));
  const auto id =
      server.submit(make_flow_job("chaotic-flow", design, open_config()));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_EQ(rec->status.code(), ErrorCode::kInternal);

  // Fault budget spent: an identical submission now completes.
  const auto id2 =
      server.submit(make_flow_job("calm-flow", design, open_config()));
  ASSERT_TRUE(id2.ok());
  const auto rec2 = server.wait(*id2);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->state, JobState::kSucceeded) << rec2->status.to_string();
}

// --- Graceful degradation at the cache and GDS sites ----------------------

TEST(ChaosCacheTest, CacheFaultsDegradeToMissesNotFailures) {
  FaultInjector fi(5);
  fi.add_rule(rule("flowcache.*", FaultKind::kErrorStatus));
  FaultInjector::ScopedInstall install(fi);

  flow::FlowCache cache;
  JobServer::Options opt;
  opt.cache = &cache;
  JobServer server(opt);
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::adder(4));
  for (int i = 0; i < 2; ++i) {
    const auto id = server.submit(
        make_flow_job("cacheless" + std::to_string(i), design, open_config()));
    ASSERT_TRUE(id.ok());
    const auto rec = server.wait(*id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->state, JobState::kSucceeded) << rec->status.to_string();
    EXPECT_EQ(rec->cache_hits, 0u) << "every probe degraded to a miss";
  }
  EXPECT_EQ(cache.stats().stores, 0u) << "every store was skipped";
  EXPECT_GT(fi.site_stats("flowcache.lookup").triggered, 0u);
}

TEST(ChaosGdsTest, WriteFileFaultFailsTheJobServerSurvives) {
  FaultInjector fi(9);
  FaultRule r = rule("gds.write_file", FaultKind::kErrorStatus);
  r.max_triggers = 1;
  fi.add_rule(r);
  FaultInjector::ScopedInstall install(fi);

  JobServer server({});
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(4));
  flow::FlowConfig cfg = open_config();
  cfg.gds_output_path = "chaos_gds_fault_test.gds";
  const auto id = server.submit(make_flow_job("doomed-io", design, cfg));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_NE(rec->status.message().find("gds"), std::string::npos);

  const auto id2 = server.submit(make_flow_job("healthy-io", design, cfg));
  ASSERT_TRUE(id2.ok());
  const auto rec2 = server.wait(*id2);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->state, JobState::kSucceeded) << rec2->status.to_string();
  std::remove(cfg.gds_output_path.c_str());
}

// --- Checkpoint-resume retries --------------------------------------------

TEST(ChaosResumeTest, RetryResumesFromDeepestCachedPrefix) {
  FaultInjector fi(13);
  FaultRule r = rule("flow.step.route", FaultKind::kErrorStatus);
  r.max_triggers = 1;
  fi.add_rule(r);
  FaultInjector::ScopedInstall install(fi);

  flow::FlowCache cache;
  JobServer::Options opt;
  opt.cache = &cache;
  JobServer server(opt);
  auto spec = make_flow_job(
      "resumable",
      std::make_shared<const rtl::Module>(rtl::designs::counter(4)),
      open_config());
  spec.max_attempts = 2;
  spec.backoff_base_ms = 1.0;
  spec.backoff_cap_ms = 2.0;
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kSucceeded) << rec->status.to_string();
  EXPECT_EQ(rec->attempts, 2);
  // The reference template's prefix before route is
  // library/elaborate/synth/map/dft/place/cts = 7 steps; the retry must
  // restore all of them from the cache instead of re-running them.
  EXPECT_EQ(rec->resume_depth, 7u);
  EXPECT_EQ(rec->cache_hits, 7u);
  int cached_steps = 0;
  for (const auto& step : rec->steps) cached_steps += step.cached ? 1 : 0;
  EXPECT_EQ(cached_steps, 7);
  EXPECT_EQ(server.metrics().counter("steps_resumed"), 7u);
}

TEST(ChaosResumeTest, WithoutCacheRetryRestartsFromScratch) {
  FaultInjector fi(13);
  FaultRule r = rule("flow.step.route", FaultKind::kErrorStatus);
  r.max_triggers = 1;
  fi.add_rule(r);
  FaultInjector::ScopedInstall install(fi);

  JobServer server({});  // no cache attached
  auto spec = make_flow_job(
      "cold-retry",
      std::make_shared<const rtl::Module>(rtl::designs::counter(4)),
      open_config());
  spec.max_attempts = 2;
  spec.backoff_base_ms = 1.0;
  spec.backoff_cap_ms = 2.0;
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kSucceeded) << rec->status.to_string();
  EXPECT_EQ(rec->attempts, 2);
  EXPECT_EQ(rec->resume_depth, 0u);
  EXPECT_EQ(rec->cache_hits, 0u);
}

TEST(ChaosResumeTest, CongestionRetriesReseedInsteadOfResuming) {
  // kResourceExhausted signals a seed-dependent failure: the retry must
  // shift the seed (new trajectory) even though that forfeits the cached
  // prefix from the failed attempt's seed.
  flow::FlowCache cache;
  JobServer::Options opt;
  opt.cache = &cache;
  JobServer server(opt);

  JobSpec spec;
  spec.name = "congested";
  spec.max_attempts = 2;
  spec.backoff_base_ms = 1.0;
  spec.backoff_cap_ms = 2.0;
  const flow::FlowConfig base = open_config();
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(4));
  auto flow_spec = make_flow_job("congested", design, base);
  // Wrap the flow work to fail the first attempt with congestion and
  // observe nothing else — the reseed itself is pinned by the fingerprint
  // chain: a reseeded attempt cannot hit the place-onward prefix.
  spec.work = [inner = flow_spec.work](JobContext& ctx) -> util::Status {
    if (ctx.attempt == 1) {
      (void)inner(ctx);  // warm the cache with this seed's prefix
      return util::Status::ResourceExhausted("synthetic congestion");
    }
    return inner(ctx);
  };
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kSucceeded) << rec->status.to_string();
  // The reseeded retry still resumes the seed-independent prefix
  // (library/elaborate/synth/map/dft — place is the first seeded stage),
  // but must NOT reach the 7-step prefix a same-seed resume would.
  EXPECT_LE(rec->resume_depth, 5u);
}

// --- Circuit breaker ------------------------------------------------------

JobSpec permanent_failure_job(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.node_name = "sky130ish";
  spec.design_name = "cursed";
  spec.work = [](JobContext&) {
    return util::Status::InvalidArgument("deterministically broken");
  };
  return spec;
}

TEST(ChaosBreakerTest, OpensAfterConsecutivePermanentFailuresAndFastFails) {
  JobServer::Options opt;
  opt.breaker_threshold = 3;
  opt.breaker_cooldown_ms = 60000.0;
  JobServer server(opt);
  for (int i = 0; i < 3; ++i) {
    const auto id = server.submit(permanent_failure_job("f" + std::to_string(i)));
    ASSERT_TRUE(id.ok()) << "breaker must stay closed below threshold";
    const auto rec = server.wait(*id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->state, JobState::kFailed);
  }
  EXPECT_TRUE(server.breaker_open("sky130ish", "cursed"));
  const auto rejected = server.submit(permanent_failure_job("fast-failed"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(server.metrics().counter("jobs_breaker_rejected"), 1u);
  EXPECT_EQ(server.metrics().counter("breaker_trips"), 1u);

  // A different (node, design) pair is unaffected.
  JobSpec other;
  other.name = "other-design";
  other.node_name = "sky130ish";
  other.design_name = "blessed";
  other.work = [](JobContext&) { return util::Status::Ok(); };
  const auto ok_id = server.submit(std::move(other));
  ASSERT_TRUE(ok_id.ok());
  EXPECT_EQ(server.wait(*ok_id)->state, JobState::kSucceeded);
}

TEST(ChaosBreakerTest, HalfOpenProbeClosesBreakerAfterCooldown) {
  JobServer::Options opt;
  opt.breaker_threshold = 2;
  opt.breaker_cooldown_ms = 30.0;
  JobServer server(opt);
  for (int i = 0; i < 2; ++i) {
    const auto id = server.submit(permanent_failure_job("f" + std::to_string(i)));
    ASSERT_TRUE(id.ok());
    (void)server.wait(*id);
  }
  ASSERT_FALSE(server.submit(permanent_failure_job("rejected")).ok());
  sleep_ms(40.0);  // cool-down elapses
  EXPECT_FALSE(server.breaker_open("sky130ish", "cursed"));

  // The design is "fixed": the half-open probe succeeds and closes it.
  JobSpec fixed;
  fixed.name = "probe";
  fixed.node_name = "sky130ish";
  fixed.design_name = "cursed";
  fixed.work = [](JobContext&) { return util::Status::Ok(); };
  const auto probe = server.submit(std::move(fixed));
  ASSERT_TRUE(probe.ok()) << "post-cooldown submission is the probe";
  EXPECT_EQ(server.wait(*probe)->state, JobState::kSucceeded);
  EXPECT_EQ(server.metrics().counter("breaker_closed"), 1u);
  EXPECT_FALSE(server.breaker_open("sky130ish", "cursed"));
  const auto after = server.submit(permanent_failure_job("welcome-back"));
  EXPECT_TRUE(after.ok()) << "breaker closed again after successful probe";
  (void)server.wait(*after);
}

TEST(ChaosBreakerTest, FailedProbeReopensTheBreaker) {
  JobServer::Options opt;
  opt.breaker_threshold = 2;
  opt.breaker_cooldown_ms = 20.0;
  JobServer server(opt);
  for (int i = 0; i < 2; ++i) {
    const auto id = server.submit(permanent_failure_job("f" + std::to_string(i)));
    ASSERT_TRUE(id.ok());
    (void)server.wait(*id);
  }
  sleep_ms(30.0);
  const auto probe = server.submit(permanent_failure_job("probe-fails"));
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(server.wait(*probe)->state, JobState::kFailed);
  EXPECT_TRUE(server.breaker_open("sky130ish", "cursed"))
      << "failed probe re-opens for another cool-down";
  EXPECT_FALSE(server.submit(permanent_failure_job("still-out")).ok());
}

TEST(ChaosBreakerTest, SuccessesAndRetryableFailuresDoNotTrip) {
  JobServer::Options opt;
  opt.breaker_threshold = 3;
  opt.breaker_cooldown_ms = 60000.0;
  JobServer server(opt);

  // permanent, success (resets), permanent, transient (neutral: neither
  // resets nor counts), permanent: the count peaks at 2, below the
  // threshold of 3.
  const auto fail1 = server.submit(permanent_failure_job("p1"));
  (void)server.wait(*fail1);
  JobSpec ok;
  ok.name = "ok";
  ok.node_name = "sky130ish";
  ok.design_name = "cursed";
  ok.work = [](JobContext&) { return util::Status::Ok(); };
  (void)server.wait(*server.submit(std::move(ok)));
  const auto fail2 = server.submit(permanent_failure_job("p2"));
  (void)server.wait(*fail2);
  JobSpec transient;
  transient.name = "congested";
  transient.node_name = "sky130ish";
  transient.design_name = "cursed";
  transient.work = [](JobContext&) {
    return util::Status::ResourceExhausted("transient");
  };
  (void)server.wait(*server.submit(std::move(transient)));
  const auto fail3 = server.submit(permanent_failure_job("p3"));
  (void)server.wait(*fail3);

  EXPECT_FALSE(server.breaker_open("sky130ish", "cursed"));
  EXPECT_EQ(server.metrics().counter("breaker_trips"), 0u);
}

// --- Admission control / load shedding ------------------------------------

TEST(ChaosAdmissionTest, BoundedQueueRejectsWithResourceExhausted) {
  JobServer::Options opt;
  opt.capacity = 1;
  opt.start_paused = true;
  opt.max_queue_depth = 2;
  JobServer server(opt);
  JobSpec quick;
  quick.work = [](JobContext&) { return util::Status::Ok(); };
  quick.name = "a";
  ASSERT_TRUE(server.submit(quick).ok());
  quick.name = "b";
  ASSERT_TRUE(server.submit(quick).ok());
  quick.name = "c";
  const auto rejected = server.submit(quick);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(server.metrics().counter("jobs_overload_rejected"), 1u);
  server.start();
  const auto records = server.drain();
  EXPECT_EQ(records.size(), 2u) << "rejected job was never enqueued";
  for (const auto& rec : records) {
    EXPECT_EQ(rec.state, JobState::kSucceeded);
  }
}

TEST(ChaosAdmissionTest, WatermarkDowngradesCommercialSubmissions) {
  JobServer::Options opt;
  opt.capacity = 1;
  opt.start_paused = true;
  opt.shed_watermark = 1;
  JobServer server(opt);

  std::atomic<int> degraded_runs{0};
  const auto make = [&degraded_runs](std::string name,
                                     flow::FlowQuality quality) {
    JobSpec spec;
    spec.name = std::move(name);
    spec.quality = quality;
    spec.work = [&degraded_runs](JobContext& ctx) {
      degraded_runs += ctx.degraded ? 1 : 0;
      return util::Status::Ok();
    };
    return spec;
  };
  // Queue empty: commercial admitted at full effort.
  const auto a = server.submit(make("a", flow::FlowQuality::kCommercial));
  // Depth 1 = watermark: commercial degraded, open untouched.
  const auto b = server.submit(make("b", flow::FlowQuality::kCommercial));
  const auto c = server.submit(make("c", flow::FlowQuality::kOpen));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  server.start();
  server.drain();
  EXPECT_FALSE(server.wait(*a)->degraded);
  EXPECT_TRUE(server.wait(*b)->degraded);
  EXPECT_FALSE(server.wait(*c)->degraded);
  EXPECT_EQ(server.metrics().counter("jobs_degraded"), 1u);
  EXPECT_EQ(degraded_runs.load(), 1) << "work function saw the downgrade";
}

TEST(ChaosAdmissionTest, DegradedFlowJobRunsAtOpenEffort) {
  JobServer::Options opt;
  opt.capacity = 1;
  opt.start_paused = true;
  opt.shed_watermark = 1;
  JobServer server(opt);
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(4));
  flow::FlowConfig cfg = open_config();
  cfg.quality = flow::FlowQuality::kCommercial;
  const auto a = server.submit(make_flow_job("full", design, cfg));
  const auto b = server.submit(make_flow_job("shed", design, cfg));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  server.start();
  server.drain();
  const auto rec_a = server.wait(*a);
  const auto rec_b = server.wait(*b);
  EXPECT_EQ(rec_a->state, JobState::kSucceeded) << rec_a->status.to_string();
  EXPECT_EQ(rec_b->state, JobState::kSucceeded) << rec_b->status.to_string();
  EXPECT_FALSE(rec_a->degraded);
  EXPECT_TRUE(rec_b->degraded);
  // Open effort runs a single synth iteration vs the commercial preset's
  // six — the degraded job measurably did less optimization work. The
  // synth step detail strings differ only if the effort differed.
  EXPECT_GT(rec_a->ppa.cell_count, 0u);
  EXPECT_GT(rec_b->ppa.cell_count, 0u);
}

// --- Retry taxonomy -------------------------------------------------------

TEST(ChaosTaxonomyTest, IsRetryableClassification) {
  EXPECT_TRUE(util::is_retryable(ErrorCode::kResourceExhausted));
  EXPECT_TRUE(util::is_retryable(ErrorCode::kInternal));
  EXPECT_TRUE(util::is_retryable(ErrorCode::kUnavailable));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kOk));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kPermissionDenied));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kNotFound));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kFailedPrecondition));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kAlreadyExists));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kUnimplemented));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kCancelled));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kDeadlineExceeded));
}

TEST(ChaosTaxonomyTest, WorkerRetriesFollowTheTaxonomy) {
  JobServer server({});
  // kUnavailable is retryable under the structured taxonomy.
  JobSpec unavailable;
  unavailable.name = "unavailable-then-ok";
  unavailable.max_attempts = 3;
  unavailable.backoff_base_ms = 1.0;
  unavailable.backoff_cap_ms = 2.0;
  unavailable.work = [](JobContext& ctx) -> util::Status {
    if (ctx.attempt < 2) return util::Status::Unavailable("warming up");
    return util::Status::Ok();
  };
  const auto id = server.submit(std::move(unavailable));
  const auto rec = server.wait(*id);
  EXPECT_EQ(rec->state, JobState::kSucceeded);
  EXPECT_EQ(rec->attempts, 2);

  // kPermissionDenied is permanent: one attempt only.
  JobSpec denied;
  denied.name = "denied";
  denied.max_attempts = 5;
  denied.work = [](JobContext&) {
    return util::Status::PermissionDenied("NDA gate");
  };
  const auto id2 = server.submit(std::move(denied));
  const auto rec2 = server.wait(*id2);
  EXPECT_EQ(rec2->state, JobState::kFailed);
  EXPECT_EQ(rec2->attempts, 1);
}

// --- Backoff determinism pins ---------------------------------------------

TEST(ChaosBackoffTest, IdenticalSeedsProduceIdenticalSchedules) {
  JobSpec spec;
  spec.backoff_base_ms = 3.0;
  spec.backoff_cap_ms = 100.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng a(seed);
    util::Rng b(seed);
    for (int attempt = 1; attempt <= 20; ++attempt) {
      EXPECT_DOUBLE_EQ(backoff_delay_ms(spec, attempt, a),
                       backoff_delay_ms(spec, attempt, b))
          << "seed " << seed << " attempt " << attempt;
    }
  }
}

TEST(ChaosBackoffTest, CapIsMonotoneAndHoldsForLargeAttemptCounts) {
  JobSpec spec;
  spec.backoff_base_ms = 2.0;
  spec.backoff_cap_ms = 64.0;
  util::Rng rng(99);
  double prev_floor = 0.0;
  for (int attempt = 1; attempt <= 63; ++attempt) {
    const double d = backoff_delay_ms(spec, attempt, rng);
    // 2 * 2^(a-1) saturates at the 64 ms cap from attempt 6 onward; the
    // jitter multiplier keeps every delay in [floor, 1.5 * cap).
    const double floor =
        std::min(64.0, 2.0 * std::pow(2.0, static_cast<double>(attempt - 1)));
    EXPECT_GE(d, floor);
    EXPECT_LT(d, 64.0 * 1.5);
    EXPECT_GE(floor, prev_floor) << "floor is monotone non-decreasing";
    prev_floor = floor;
    if (attempt >= 6) {
      EXPECT_GE(d, 64.0) << "saturated attempts pay at least the full cap";
    }
  }
}

// --- Campaign: many jobs, many workers, injected faults -------------------

TEST(ChaosCampaignTest, FiftyJobCampaignUnderFaultsLosesNothing) {
  FaultInjector fi(2026);
  fi.add_rule(rule("flow.step.*", FaultKind::kErrorStatus, 0.3));
  FaultRule crash = rule("flow.step.*", FaultKind::kThrow, 0.05);
  fi.add_rule(crash);
  fi.add_rule(rule("flowcache.*", FaultKind::kErrorStatus, 0.1));
  FaultInjector::ScopedInstall install(fi);

  flow::FlowCache cache;
  JobServer::Options opt;
  opt.capacity = 4;
  opt.seed = 777;
  opt.cache = &cache;
  JobServer server(opt);

  const std::vector<std::shared_ptr<const rtl::Module>> designs = {
      std::make_shared<const rtl::Module>(rtl::designs::counter(4)),
      std::make_shared<const rtl::Module>(rtl::designs::adder(4)),
  };
  constexpr int kJobs = 50;
  std::vector<JobId> ids;
  for (int i = 0; i < kJobs; ++i) {
    auto spec = make_flow_job("chaos" + std::to_string(i),
                              designs[static_cast<std::size_t>(i) % 2],
                              open_config());
    spec.max_attempts = 3;
    spec.backoff_base_ms = 0.5;
    spec.backoff_cap_ms = 2.0;
    const auto id = server.submit(std::move(spec));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const auto records = server.drain();

  // Invariant 1: no job lost — every submitted id has a record and every
  // record is terminal.
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kJobs));
  for (const JobId id : ids) {
    const auto rec = server.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(is_terminal(rec->state)) << to_string(rec->state);
  }
  // Invariant 2: metrics totals are consistent with the records.
  int succeeded = 0, failed = 0;
  for (const auto& rec : records) {
    succeeded += rec.state == JobState::kSucceeded ? 1 : 0;
    failed += rec.state == JobState::kFailed ? 1 : 0;
    if (rec.state == JobState::kFailed) {
      EXPECT_TRUE(rec.status.code() == ErrorCode::kInternal ||
                  rec.status.code() == ErrorCode::kResourceExhausted)
          << rec.status.to_string();
    }
  }
  const auto& m = server.metrics();
  EXPECT_EQ(m.counter("jobs_submitted"), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(m.counter("jobs_succeeded"), static_cast<std::uint64_t>(succeeded));
  EXPECT_EQ(m.counter("jobs_failed"), static_cast<std::uint64_t>(failed));
  EXPECT_EQ(m.counter("jobs_succeeded") + m.counter("jobs_failed") +
                m.counter("jobs_cancelled") + m.counter("jobs_timed_out"),
            static_cast<std::uint64_t>(kJobs));
  // Invariant 3: at a 0.3 per-step fault rate, three attempts rescue a
  // meaningful fraction — the campaign is degraded, not dead.
  EXPECT_GT(succeeded, 0);
  // Faults actually fired (the campaign was not a no-op).
  EXPECT_GT(fi.total_triggered(), 0u);
}

TEST(ChaosCampaignTest, MixedOutcomeCampaignKeepsMetricsConsistent) {
  FaultInjector fi(31);
  fi.add_rule(rule("flow.step.*", FaultKind::kErrorStatus, 0.15));
  FaultInjector::ScopedInstall install(fi);

  flow::FlowCache cache;
  JobServer::Options opt;
  opt.capacity = 4;
  opt.cache = &cache;
  opt.breaker_threshold = 4;
  opt.breaker_cooldown_ms = 50.0;
  opt.max_queue_depth = 200;
  JobServer server(opt);

  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::adder(4));
  std::vector<JobId> ids;
  for (int i = 0; i < 30; ++i) {
    auto spec =
        make_flow_job("mix" + std::to_string(i), design, open_config());
    spec.max_attempts = 2;
    spec.backoff_base_ms = 0.5;
    spec.backoff_cap_ms = 1.0;
    const auto id = server.submit(std::move(spec));
    if (!id.ok()) {
      // Breaker may open mid-campaign; rejection is a legal outcome.
      EXPECT_EQ(id.status().code(), ErrorCode::kUnavailable);
      continue;
    }
    ids.push_back(*id);
    if (i % 7 == 3) (void)server.cancel(*id);
  }
  server.shutdown(JobServer::DrainMode::kDrain);
  std::uint64_t terminal = 0;
  for (const JobId id : ids) {
    const auto rec = server.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(is_terminal(rec->state));
    ++terminal;
  }
  const auto& m = server.metrics();
  EXPECT_EQ(m.counter("jobs_succeeded") + m.counter("jobs_failed") +
                m.counter("jobs_cancelled") + m.counter("jobs_timed_out"),
            terminal);
}

// --- Shutdown/cancel race stress (TSan) -----------------------------------

TEST(ChaosRaceTest, ConcurrentSubmitCancelShutdownAllTerminal) {
  JobServer::Options opt;
  opt.capacity = 4;
  JobServer server(opt);

  std::mutex mu;
  std::vector<JobId> ids;
  std::atomic<bool> stop_submitting{false};

  std::thread submitter([&] {
    for (int i = 0; i < 200 && !stop_submitting.load(); ++i) {
      JobSpec spec;
      spec.name = "race" + std::to_string(i);
      spec.work = [](JobContext& ctx) -> util::Status {
        for (int k = 0; k < 3; ++k) {
          if (ctx.cancel.cancelled()) {
            return util::Status::Cancelled("observed");
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        return util::Status::Ok();
      };
      const auto id = server.submit(std::move(spec));
      if (!id.ok()) {
        // Shutdown won the race: the submission was refused, not lost.
        EXPECT_EQ(id.status().code(), ErrorCode::kFailedPrecondition);
        break;
      }
      std::lock_guard<std::mutex> lock(mu);
      ids.push_back(*id);
    }
  });
  std::thread canceller([&] {
    for (int i = 0; i < 100; ++i) {
      JobId target = 0;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!ids.empty()) target = ids[static_cast<std::size_t>(i) % ids.size()];
      }
      if (target != 0) (void)server.cancel(target);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  std::thread shutter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.shutdown(JobServer::DrainMode::kCancelPending);
    stop_submitting.store(true);
  });
  submitter.join();
  canceller.join();
  shutter.join();

  // Every accepted job reached a terminal state; nothing hangs, nothing
  // is lost.
  std::lock_guard<std::mutex> lock(mu);
  for (const JobId id : ids) {
    const auto rec = server.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(is_terminal(rec->state)) << to_string(rec->state);
  }
  const auto& m = server.metrics();
  EXPECT_EQ(m.counter("jobs_succeeded") + m.counter("jobs_failed") +
                m.counter("jobs_cancelled") + m.counter("jobs_timed_out"),
            ids.size());
}

}  // namespace
}  // namespace eurochip::hub
