#include <gtest/gtest.h>

#include <cmath>

#include "eurochip/util/geometry.hpp"
#include "eurochip/util/result.hpp"
#include "eurochip/util/rng.hpp"
#include "eurochip/util/stats.hpp"
#include "eurochip/util/strings.hpp"
#include "eurochip/util/table.hpp"

namespace eurochip::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.to_string(), "not_found: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(4);
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 6000; ++i) ++hits[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  for (int h : hits) EXPECT_GT(h, 700);  // fair-ish
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, PoissonMeanRoughlyLambda) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 5000; ++i) s.add(rng.poisson(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.15);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  for (double& v : y) v = -v;
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(StatsTest, GeomeanOfPowers) {
  EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(StatsTest, GeomeanSkipsNonPositiveValues) {
  // Zeros and negatives are skipped, not asserted on: same result in
  // debug and release builds.
  EXPECT_NEAR(geomean({0.0, 1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geomean({-5.0, 1.0, 100.0}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1);
  h.add(0.5);
  h.add(9.5);
  h.add(11.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, SampleAtUpperBoundLandsInTopBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(10.0);  // exactly hi: top bin, not overflow
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bin_count(4), 1u);
  h.add(10.0 + 1e-9);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(GeometryTest, RectBasics) {
  const Rect r{0, 0, 10, 5};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 5);
  EXPECT_EQ(r.area(), 50);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_FALSE(r.contains({10, 0}));
}

TEST(GeometryTest, OverlapSharedEdgeDoesNotCount) {
  const Rect a{0, 0, 10, 10};
  const Rect b{10, 0, 20, 10};
  EXPECT_FALSE(a.overlaps(b));
  const Rect c{9, 0, 19, 10};
  EXPECT_TRUE(a.overlaps(c));
}

TEST(GeometryTest, UnionAndIntersection) {
  const Rect a{0, 0, 4, 4};
  const Rect b{2, 2, 6, 6};
  EXPECT_EQ(a.intersection(b), (Rect{2, 2, 4, 4}));
  EXPECT_EQ(a.bbox_union(b), (Rect{0, 0, 6, 6}));
}

TEST(GeometryTest, BoundingBoxAccumulates) {
  BoundingBox bb;
  EXPECT_FALSE(bb.valid());
  bb.add(Point{3, 4});
  bb.add(Rect{-1, -2, 0, 0});
  EXPECT_TRUE(bb.valid());
  EXPECT_EQ(bb.rect(), (Rect{-1, -2, 4, 5}));
}

TEST(GeometryTest, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-1, -1}, {1, 1}), 4);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, TrimAndLower) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("eurochip", "euro"));
  EXPECT_FALSE(starts_with("eu", "euro"));
}

TEST(StringsTest, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_si(1234567.0, 2), "1.23M");
  EXPECT_EQ(fmt_si(-2500.0, 1), "-2.5k");
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
}

TEST(CsvWriterTest, QuotesSpecialFields) {
  CsvWriter w;
  w.add_row({"a", "b,c", "d\"e"});
  EXPECT_EQ(w.str(), "a,\"b,c\",\"d\"\"e\"\n");
}

TEST(TableTest, RendersAlignedColumns) {
  Table t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"long_name", "23"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long_name"), std::string::npos);
}

TEST(AsciiChartTest, RendersBars) {
  AsciiChart c("Growth", "year", "count");
  c.add_point("2020", 10);
  c.add_point("2021", 20);
  const std::string out = c.render(20);
  EXPECT_NE(out.find("2020"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace eurochip::util
