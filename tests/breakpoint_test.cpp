// Flow breakpoints end to end: the BreakController rendezvous, JobServer
// park/inspect/resume (deadline suspension, cancellation, gauges, flight
// entries), debug queries racing lifecycle transitions, and the federated
// service keeping parked jobs inspectable across steals and crash failover.
//
// Invariant under test throughout: parking changes WHEN a flow finishes,
// never its artifacts — a parked-and-resumed run lands on the same
// artifact digest as an unparked one.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eurochip/dbg/debug.hpp"
#include "eurochip/fed/federation.hpp"
#include "eurochip/fed/health.hpp"
#include "eurochip/fed/router.hpp"
#include "eurochip/flow/breakpoint.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/hub/job.hpp"
#include "eurochip/hub/server.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/cancel.hpp"
#include "eurochip/util/clock.hpp"

namespace eurochip {
namespace {

flow::FlowConfig open_config(std::uint64_t seed) {
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.quality = flow::FlowQuality::kOpen;
  cfg.seed = seed;
  return cfg;
}

// --- BreakController rendezvous (no flow, no server) -----------------------

TEST(BreakpointControllerTest, ParkInspectResumeHandshake) {
  flow::BreakController ctrl;
  EXPECT_FALSE(ctrl.parked());
  EXPECT_FALSE(ctrl.wait_parked(5.0));
  EXPECT_FALSE(ctrl.inspect([](const flow::FlowContext&) { FAIL(); }));
  ctrl.resume();  // resume with nobody parked is a no-op, not a lost wakeup

  std::atomic<bool> parked_hook{false};
  std::atomic<double> credited_ms{-1.0};
  ctrl.set_hooks([&] { parked_hook.store(true); },
                 [&](double ms) { credited_ms.store(ms); });

  flow::FlowContext ctx;
  ctx.config.seed = 42;
  double parked_ms = -1.0;
  std::thread flow_thread([&] {
    parked_ms = ctrl.park(ctx, util::CancelToken{});
  });

  ASSERT_TRUE(ctrl.wait_parked(10000.0));
  EXPECT_TRUE(ctrl.parked());
  EXPECT_TRUE(parked_hook.load());
  bool inspected = false;
  EXPECT_TRUE(ctrl.inspect([&](const flow::FlowContext& seen) {
    inspected = true;
    EXPECT_EQ(&seen, &ctx);
    EXPECT_EQ(seen.config.seed, 42u);
  }));
  EXPECT_TRUE(inspected);

  ctrl.resume();
  flow_thread.join();
  EXPECT_GE(parked_ms, 0.0);
  EXPECT_EQ(credited_ms.load(), parked_ms);
  EXPECT_FALSE(ctrl.parked());
}

TEST(BreakpointControllerTest, ExplicitCancelUnparksPromptly) {
  flow::BreakController ctrl;
  util::CancelSource source;
  flow::FlowContext ctx;
  std::thread flow_thread([&] { (void)ctrl.park(ctx, source.token()); });
  ASSERT_TRUE(ctrl.wait_parked(10000.0));
  source.request_cancel();
  flow_thread.join();  // park polls cancellation; this must not hang
  EXPECT_FALSE(ctrl.parked());
}

// --- JobServer park / query / resume ---------------------------------------

TEST(BreakpointServerTest, ParkedJobAnswersWhySlackAndResumesToSameDigest) {
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::multiplier(8));
  const auto cfg = open_config(8);

  // Unparked baseline.
  hub::JobServer base({});
  const auto base_id =
      base.submit(hub::make_flow_job("baseline", design, cfg));
  ASSERT_TRUE(base_id.ok());
  const auto base_rec = base.wait(*base_id);
  ASSERT_TRUE(base_rec.ok());
  ASSERT_EQ(base_rec->state, hub::JobState::kSucceeded)
      << base_rec->status.to_string();
  ASSERT_FALSE(base_rec->artifact_digest == util::Digest{});

  // Same flow, parked after sta.
  hub::JobServer srv({});
  auto parked_cfg = cfg;
  parked_cfg.break_after = "sta";
  const auto id =
      srv.submit(hub::make_flow_job("parked", design, parked_cfg));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(srv.wait_parked(*id, 120000.0));
  EXPECT_TRUE(srv.job_parked(*id));
  EXPECT_EQ(srv.parked_count(), 1u);
  EXPECT_EQ(srv.metrics().gauge("jobs_parked"), 1.0);
  EXPECT_NE(srv.metrics().export_prometheus().find("eurochip_jobs_parked"),
            std::string::npos);

  // why_slack on the live parked context: the critical path is visible.
  const auto slack = srv.query(*id, dbg::Query::why_slack());
  ASSERT_TRUE(slack.ok()) << slack.status().to_string();
  ASSERT_TRUE(slack->found) << slack->text;
  EXPECT_TRUE(slack->why_slack.is_critical);
  EXPECT_FALSE(slack->why_slack.path.empty());

  const auto where = srv.query(*id, dbg::Query::where_is("p_q"));
  ASSERT_TRUE(where.ok()) << where.status().to_string();
  ASSERT_TRUE(where->found) << where->text;
  ASSERT_EQ(where->where_is.bits.size(), 16u);
  EXPECT_TRUE(where->where_is.bits[0].placed);
  EXPECT_TRUE(where->where_is.bits[0].routed);

  const auto flight = srv.query(*id, dbg::Query::flight());
  ASSERT_TRUE(flight.ok()) << flight.status().to_string();
  EXPECT_TRUE(flight->found);
  EXPECT_NE(flight->text.find("park"), std::string::npos) << flight->text;

  EXPECT_TRUE(srv.resume(*id));
  const auto rec = srv.wait(*id);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->state, hub::JobState::kSucceeded)
      << rec->status.to_string();
  EXPECT_TRUE(rec->artifact_digest == base_rec->artifact_digest)
      << "parking must not change artifacts";
  EXPECT_EQ(srv.parked_count(), 0u);
  EXPECT_EQ(srv.metrics().gauge("jobs_parked"), 0.0);

  bool saw_park = false, saw_resume = false;
  for (const auto& e : rec->flight) {
    if (e.kind == "park") {
      saw_park = true;
      EXPECT_EQ(e.label, "sta");
    }
    if (e.kind == "resume") saw_resume = true;
  }
  EXPECT_TRUE(saw_park);
  EXPECT_TRUE(saw_resume);
  EXPECT_FALSE(hub::render_flight_record(*rec).empty());
}

TEST(BreakpointServerTest, CancelWhileParkedFinalizesAsCancelled) {
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(8));
  auto cfg = open_config(3);
  cfg.break_after = "place";
  hub::JobServer srv({});
  const auto id = srv.submit(hub::make_flow_job("doomed", design, cfg));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(srv.wait_parked(*id, 120000.0));
  EXPECT_TRUE(srv.cancel(*id));
  const auto rec = srv.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, hub::JobState::kCancelled);
  EXPECT_EQ(srv.parked_count(), 0u);
}

TEST(BreakpointServerTest, DeadlineClockIsSuspendedWhileParked) {
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(6));
  auto cfg = open_config(6);
  cfg.break_after = "synth";
  auto spec = hub::make_flow_job("long-nap", design, cfg);
  // The park below outlives this deadline by seconds; only the suspension
  // credit (CancelSource::extend_deadline_ms on resume) lets the job live.
  spec.deadline_ms = 5000.0;
  hub::JobServer srv({});
  const auto id = srv.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(srv.wait_parked(*id, 120000.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(6000));
  EXPECT_TRUE(srv.job_parked(*id)) << "deadline must not fire while parked";
  EXPECT_TRUE(srv.resume(*id));
  const auto rec = srv.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, hub::JobState::kSucceeded)
      << rec->status.to_string();
}

TEST(BreakpointServerTest, QueriesOnFinishedJobsFallBackToTheCache) {
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(7));
  flow::FlowCache cache(flow::FlowCache::Options{.max_bytes = 256u << 20});
  hub::JobServer::Options opt;
  opt.cache = &cache;
  hub::JobServer srv(opt);
  const auto cfg = open_config(7);
  const auto id = srv.submit(hub::make_flow_job("done", design, cfg));
  ASSERT_TRUE(id.ok());
  const auto rec = srv.wait(*id);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->state, hub::JobState::kSucceeded);

  // No live parked context anymore: answered from the cache snapshots.
  const auto where = srv.query(*id, dbg::Query::where_is("q"));
  ASSERT_TRUE(where.ok()) << where.status().to_string();
  ASSERT_TRUE(where->found) << where->text;
  EXPECT_EQ(where->where_is.bits.size(), 7u);

  const auto flight = srv.query(*id, dbg::Query::flight());
  ASSERT_TRUE(flight.ok());
  EXPECT_TRUE(flight->found);

  EXPECT_FALSE(srv.query(9999, dbg::Query::flight()).ok());
}

TEST(BreakpointServerTest, SyntheticJobsReportNoDebugInfo) {
  hub::JobServer srv({});
  hub::JobSpec spec;
  spec.name = "synthetic";
  spec.work = [](hub::JobContext&) { return util::Status::Ok(); };
  const auto id = srv.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(srv.wait(*id).ok());
  // The flight record exists for every job; artifact questions do not.
  EXPECT_TRUE(srv.query(*id, dbg::Query::flight()).ok());
  EXPECT_FALSE(srv.query(*id, dbg::Query::where_is("q")).ok());
}

// --- queries racing lifecycle transitions (TSan target) --------------------

TEST(BreakpointRaceTest, QueriesRaceResumeAndCancel) {
  hub::JobServer::Options opt;
  opt.capacity = 4;
  hub::JobServer srv(opt);

  std::vector<hub::JobId> ids;
  for (int i = 0; i < 4; ++i) {
    auto cfg = open_config(20 + static_cast<std::uint64_t>(i));
    cfg.break_after = "route";
    const auto design = std::make_shared<const rtl::Module>(
        rtl::designs::counter(5 + i));
    const auto id = srv.submit(
        hub::make_flow_job("race" + std::to_string(i), design, cfg));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> queriers;
  for (int t = 0; t < 3; ++t) {
    queriers.emplace_back([&, t] {
      int round = 0;
      while (!done.load(std::memory_order_acquire)) {
        for (const auto id : ids) {
          switch ((round + t) % 3) {
            case 0: (void)srv.query(id, dbg::Query::where_is("q")); break;
            case 1: (void)srv.query(id, dbg::Query::flight()); break;
            default: (void)srv.query(id, dbg::Query::why_slack()); break;
          }
        }
        ++round;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  for (const auto id : ids) ASSERT_TRUE(srv.wait_parked(id, 120000.0));
  EXPECT_EQ(srv.parked_count(), 4u);
  EXPECT_TRUE(srv.resume(ids[0]));
  EXPECT_TRUE(srv.resume(ids[1]));
  EXPECT_TRUE(srv.cancel(ids[2]));
  EXPECT_TRUE(srv.cancel(ids[3]));

  std::vector<hub::JobState> states;
  for (const auto id : ids) {
    const auto rec = srv.wait(id);
    ASSERT_TRUE(rec.ok());
    states.push_back(rec->state);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : queriers) t.join();

  EXPECT_EQ(states[0], hub::JobState::kSucceeded);
  EXPECT_EQ(states[1], hub::JobState::kSucceeded);
  EXPECT_EQ(states[2], hub::JobState::kCancelled);
  EXPECT_EQ(states[3], hub::JobState::kCancelled);
  EXPECT_EQ(srv.parked_count(), 0u);
}

// --- federation ------------------------------------------------------------

fed::HealthMonitor::Options fast_monitor() {
  fed::HealthMonitor::Options opts;
  opts.suspect_after_ms = 50.0;
  opts.down_after_ms = 150.0;
  opts.rejoin_beats = 3;
  return opts;
}

std::size_t home_of(const fed::FederatedService& service,
                    const std::string& node, const std::string& design) {
  return service.router().hub_for(fed::Router::shard_key(node, design));
}

TEST(BreakpointFedTest, ParkQueryResumeAcrossTheFederation) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.hub_options.capacity = 2;
  fed::FederatedService service(opts);

  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(7));
  auto cfg = open_config(71);
  cfg.break_after = "route";
  const auto id =
      service.submit(hub::make_flow_job("fed-park", design, cfg));
  ASSERT_TRUE(id.ok()) << id.status().to_string();

  ASSERT_TRUE(service.wait_parked(*id, 120000.0));
  EXPECT_TRUE(service.job_parked(*id));

  const auto where = service.query(*id, dbg::Query::where_is("q"));
  ASSERT_TRUE(where.ok()) << where.status().to_string();
  ASSERT_TRUE(where->found) << where->text;

  auto flight = service.query(*id, dbg::Query::flight());
  ASSERT_TRUE(flight.ok());
  EXPECT_TRUE(flight->found);
  EXPECT_NE(flight->text.find("park"), std::string::npos);

  EXPECT_TRUE(service.resume(*id));
  const auto rec = service.wait_for(*id, 120000.0);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec->state, hub::JobState::kSucceeded);

  // Settled: the hub may forget, the federation book must not.
  flight = service.query(*id, dbg::Query::flight());
  ASSERT_TRUE(flight.ok()) << flight.status().to_string();
  EXPECT_TRUE(flight->found);
  EXPECT_NE(flight->text.find("park"), std::string::npos);
  EXPECT_NE(flight->text.find("resume"), std::string::npos);

  EXPECT_FALSE(service.query(424242, dbg::Query::flight()).ok());
}

TEST(BreakpointFedTest, StolenQueuedJobsKeepTheirBreakpoints) {
  util::FakeClock clock;
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.steal = false;  // rebalance_once() driven by hand
  opts.health = false;
  opts.clock = &clock;
  opts.monitor = fast_monitor();
  opts.hub_options.capacity = 1;
  opts.hub_options.start_paused = true;
  fed::FederatedService service(opts);

  // Same (node, design) => same home hub: the queue piles up on one side
  // and the rebalancer has something to move.
  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(6));
  const auto cfg_base = open_config(61);
  const std::size_t home =
      home_of(service, cfg_base.node.name, design->name());
  std::vector<fed::FedJobId> ids;
  for (int i = 0; i < 3; ++i) {
    auto cfg = cfg_base;
    cfg.break_after = "cts";
    const auto id = service.submit(
        hub::make_flow_job("steal" + std::to_string(i), design, cfg));
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(*id);
  }
  ASSERT_EQ(service.hub(home).queued_count(), 3u);
  EXPECT_GE(service.rebalance_once(), 1u);
  service.start();

  // Jobs park on whichever hub ended up owning them (capacity 1 per hub:
  // later jobs cannot park until an earlier one resumes, so poll).
  std::vector<bool> resumed(ids.size(), false);
  std::size_t remaining = ids.size();
  const auto t0 = std::chrono::steady_clock::now();
  while (remaining > 0) {
    ASSERT_LT(std::chrono::steady_clock::now() - t0,
              std::chrono::seconds(120));
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (resumed[i] || !service.job_parked(ids[i])) continue;
      const auto flight = service.query(ids[i], dbg::Query::flight());
      ASSERT_TRUE(flight.ok()) << flight.status().to_string();
      EXPECT_NE(flight->text.find("park"), std::string::npos);
      EXPECT_TRUE(service.resume(ids[i]));
      resumed[i] = true;
      --remaining;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (const auto id : ids) {
    const auto rec = service.wait_for(id, 120000.0);
    ASSERT_TRUE(rec.ok()) << rec.status().to_string();
    EXPECT_EQ(rec->state, hub::JobState::kSucceeded);
  }
  EXPECT_GE(service.stats().stolen, 1u);
}

TEST(BreakpointFedTest, ParkedJobSurvivesCrashFailoverAndStaysQueryable) {
  util::FakeClock clock;
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.steal = false;
  opts.health = false;  // heartbeat_once() driven by hand
  opts.clock = &clock;
  opts.monitor = fast_monitor();
  opts.hub_options.capacity = 2;
  fed::FederatedService service(opts);

  const auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(6));
  auto cfg = open_config(62);

  // Unparked single-server baseline for the digest comparison.
  util::Digest base_digest;
  {
    hub::JobServer base({});
    const auto id = base.submit(hub::make_flow_job("base", design, cfg));
    ASSERT_TRUE(id.ok());
    const auto rec = base.wait(*id);
    ASSERT_TRUE(rec.ok());
    ASSERT_EQ(rec->state, hub::JobState::kSucceeded);
    base_digest = rec->artifact_digest;
  }

  cfg.break_after = "place";
  const auto id =
      service.submit(hub::make_flow_job("unlucky", design, cfg));
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  const std::size_t home = home_of(service, cfg.node.name, design->name());
  ASSERT_TRUE(service.wait_parked(*id, 120000.0));

  // The hub dies mid-park. The park exits through the cancel poll, the
  // terminal is black-holed, and failover re-homes the book-kept spec —
  // breakpoint controller and debug info included.
  service.crash_hub(home);
  clock.advance_ms(200.0);
  ASSERT_GE(service.heartbeat_once(), 2u);

  // The rerun parks again at the same step, on the survivor.
  ASSERT_TRUE(service.wait_parked(*id, 120000.0));
  const auto where = service.query(*id, dbg::Query::where_is("q"));
  ASSERT_TRUE(where.ok()) << where.status().to_string();
  ASSERT_TRUE(where->found) << where->text;
  for (const auto& bit : where->where_is.bits) EXPECT_TRUE(bit.placed);

  EXPECT_TRUE(service.resume(*id));
  const auto rec = service.wait_for(*id, 120000.0);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec->state, hub::JobState::kSucceeded);
  EXPECT_EQ(rec->failovers, 1);
  EXPECT_TRUE(rec->artifact_digest == base_digest)
      << "failover + parking must not change artifacts";
  bool saw_failover = false, saw_park = false;
  for (const auto& e : rec->flight) {
    if (e.kind == "failover") saw_failover = true;
    if (e.kind == "park") saw_park = true;
  }
  EXPECT_TRUE(saw_failover);
  EXPECT_TRUE(saw_park);
}

}  // namespace
}  // namespace eurochip
