#include <gtest/gtest.h>

#include "eurochip/flow/flow.hpp"
#include "eurochip/netlist/simulator.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/rtl/simulator.hpp"

namespace eurochip::flow {
namespace {

FlowConfig open_config(const std::string& node = "sky130ish") {
  FlowConfig cfg;
  cfg.node = pdk::standard_node(node).value();
  cfg.quality = FlowQuality::kOpen;
  return cfg;
}

TEST(FlowTest, EndToEndProducesAllArtifacts) {
  const auto m = rtl::designs::alu(8);
  const auto result = run_reference_flow(m, open_config());
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto& a = result->artifacts;
  EXPECT_NE(a.library, nullptr);
  EXPECT_NE(a.aig, nullptr);
  EXPECT_NE(a.mapped, nullptr);
  EXPECT_NE(a.placed, nullptr);
  EXPECT_NE(a.routed, nullptr);
  EXPECT_FALSE(a.gds_bytes.empty());
  EXPECT_GT(result->ppa.cell_count, 0u);
  EXPECT_GT(result->ppa.area_um2, 0.0);
  EXPECT_GT(result->ppa.die_area_mm2, 0.0);
  EXPECT_GT(result->ppa.fmax_mhz, 0.0);
  EXPECT_GT(result->ppa.power_uw, 0.0);
  EXPECT_GT(result->ppa.wirelength_dbu, 0);
  EXPECT_EQ(result->ppa.drc_violations, 0u);
  EXPECT_EQ(result->steps.size(), 12u);
  // ALU is sequential: a clock tree must have been built. (Few sinks fit
  // one leaf cluster, so zero buffers is legal; skew is still reported.)
  EXPECT_NE(a.clock_tree, nullptr);
  EXPECT_GE(result->ppa.clock_skew_ps, 0.0);
  EXPECT_EQ(a.clock_tree->num_sinks, a.mapped->sequential_cells().size());
}

TEST(FlowTest, MappedNetlistStillMatchesRtl) {
  const auto m = rtl::designs::counter(8);
  const auto result = run_reference_flow(m, open_config());
  ASSERT_TRUE(result.ok());
  auto rtl_sim = rtl::Simulator::create(m);
  auto nl_sim = netlist::Simulator::create(*result->artifacts.mapped);
  ASSERT_TRUE(rtl_sim.ok());
  ASSERT_TRUE(nl_sim.ok());
  rtl_sim->reset();
  nl_sim->reset();
  for (int c = 0; c < 20; ++c) {
    const std::uint64_t en = c % 3 == 0 ? 0 : 1;
    const auto r = rtl_sim->step({en});
    const auto n = nl_sim->step({en != 0});
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < n.size(); ++b) v |= (n[b] ? 1uLL : 0uLL) << b;
    ASSERT_EQ(v, r[0]) << "cycle " << c;
  }
}

TEST(FlowTest, CommercialPresetBeatsOpenOnFmax) {
  const auto m = rtl::designs::alu(12);
  FlowConfig open_cfg = open_config();
  FlowConfig comm_cfg = open_config();
  comm_cfg.quality = FlowQuality::kCommercial;
  const auto open_res = run_reference_flow(m, open_cfg);
  const auto comm_res = run_reference_flow(m, comm_cfg);
  ASSERT_TRUE(open_res.ok());
  ASSERT_TRUE(comm_res.ok());
  EXPECT_GE(comm_res->ppa.fmax_mhz, open_res->ppa.fmax_mhz);
}

TEST(FlowTest, DefaultClockDerivedFromNode) {
  FlowConfig cfg = open_config();
  EXPECT_DOUBLE_EQ(cfg.effective_clock_ps(), 40.0 * cfg.node.fo4_delay_ps);
  cfg.clock_period_ps = 1234.0;
  EXPECT_DOUBLE_EQ(cfg.effective_clock_ps(), 1234.0);
}

TEST(FlowTest, TemplateAblationDropStep) {
  const auto m = rtl::designs::counter(8);
  FlowTemplate t = reference_template();
  ASSERT_TRUE(t.remove_step("synth"));  // skip optimization entirely
  const auto result = t.execute(m, open_config());
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->steps.size(), 11u);
  EXPECT_GT(result->ppa.cell_count, 0u);
}

TEST(FlowTest, RemoveUnknownStepReturnsFalse) {
  FlowTemplate t = reference_template();
  EXPECT_FALSE(t.remove_step("no-such-step"));
  EXPECT_FALSE(t.replace_step("no-such-step",
                              [](FlowContext&) { return util::Status::Ok(); }));
}

TEST(FlowTest, StepOrderViolationFails) {
  const auto m = rtl::designs::counter(8);
  FlowTemplate t("broken");
  t.add_step({"place", [](FlowContext& ctx) {
    // Placement without mapping must fail with a precondition error.
    if (!ctx.artifacts.mapped) {
      return util::Status::FailedPrecondition("place requires map");
    }
    return util::Status::Ok();
  }});
  const auto result = t.execute(m, open_config());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kFailedPrecondition);
}

TEST(FlowTest, WorksOnOpenAndCommercialNodes) {
  const auto m = rtl::designs::counter(8);
  for (const char* node : {"gf180ish", "ihp130ish", "commercial28"}) {
    const auto result = run_reference_flow(m, open_config(node));
    ASSERT_TRUE(result.ok()) << node << ": " << result.status().to_string();
    EXPECT_EQ(result->ppa.drc_violations, 0u) << node;
  }
}

TEST(FlowTest, AdvancedNodeSmallerAndFaster) {
  const auto m = rtl::designs::alu(8);
  const auto r130 = run_reference_flow(m, open_config("sky130ish"));
  const auto r7 = run_reference_flow(m, open_config("commercial7"));
  ASSERT_TRUE(r130.ok());
  ASSERT_TRUE(r7.ok());
  EXPECT_LT(r7->ppa.area_um2, r130->ppa.area_um2 / 10.0);
  EXPECT_GT(r7->ppa.fmax_mhz, r130->ppa.fmax_mhz * 3.0);
}

TEST(FlowTest, StepRecordsCarryDetails) {
  const auto m = rtl::designs::counter(8);
  const auto result = run_reference_flow(m, open_config());
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    EXPECT_FALSE(step.name.empty());
    EXPECT_FALSE(step.detail.empty()) << step.name;
    EXPECT_GE(step.runtime_ms, 0.0);
  }
  EXPECT_GT(result->total_runtime_ms, 0.0);
}

TEST(FlowTest, GdsOutputPathWritesFile) {
  const auto m = rtl::designs::counter(8);
  FlowConfig cfg = open_config();
  cfg.gds_output_path = "/tmp/eurochip_flow_test.gds";
  const auto result = run_reference_flow(m, cfg);
  ASSERT_TRUE(result.ok());
  std::FILE* f = std::fopen(cfg.gds_output_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(cfg.gds_output_path.c_str());
}

TEST(FlowTest, RenderReportContainsStepsAndPpa) {
  const auto m = rtl::designs::counter(8);
  const FlowConfig cfg = open_config();
  const auto result = run_reference_flow(m, cfg);
  ASSERT_TRUE(result.ok());
  const std::string report = render_report(*result, cfg);
  for (const char* needle :
       {"Flow steps", "PPA summary", "elaborate", "route", "fmax (MHz)",
        "DRC violations", "sky130ish"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(FlowTest, CommercialPresetBoundsFanout) {
  const auto m = rtl::designs::mini_cpu_datapath(8);
  FlowConfig cfg = open_config();
  cfg.quality = FlowQuality::kCommercial;
  const auto result = run_reference_flow(m, cfg);
  ASSERT_TRUE(result.ok());
  const auto& nl = *result->artifacts.mapped;
  const int bound = knobs_for(FlowQuality::kCommercial, 1, 0.6).buffer_max_fanout;
  for (netlist::NetId id : nl.all_nets()) {
    EXPECT_LE(nl.net(id).sinks.size(), static_cast<std::size_t>(bound));
  }
}

TEST(FlowTest, ScanInsertionAddsChainThroughWholeFlow) {
  const auto m = rtl::designs::counter(8);
  FlowConfig cfg = open_config();
  cfg.insert_scan = true;
  const auto result = run_reference_flow(m, cfg);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto& nl = *result->artifacts.mapped;
  // scan_en + scan_in inputs and a scan_out output survive to GDSII.
  bool has_scan_out = false;
  for (const auto& port : nl.outputs()) {
    if (port.name == "scan_out") has_scan_out = true;
  }
  EXPECT_TRUE(has_scan_out);
  EXPECT_EQ(result->ppa.drc_violations, 0u);
  // The scan muxes cost area vs the plain flow.
  FlowConfig plain = open_config();
  const auto base = run_reference_flow(m, plain);
  ASSERT_TRUE(base.ok());
  EXPECT_GT(result->ppa.cell_count, base->ppa.cell_count);
}

TEST(FlowTest, KnobsDifferBetweenPresets) {
  const auto open_knobs = knobs_for(FlowQuality::kOpen, 1, 0.6);
  const auto comm_knobs = knobs_for(FlowQuality::kCommercial, 1, 0.6);
  EXPECT_LT(open_knobs.synth_iterations, comm_knobs.synth_iterations);
  EXPECT_LT(open_knobs.place_options.global_iterations,
            comm_knobs.place_options.global_iterations);
  EXPECT_LT(open_knobs.route_options.max_ripup_iterations,
            comm_knobs.route_options.max_ripup_iterations);
  EXPECT_FALSE(open_knobs.map_options.size_for_load);
  EXPECT_TRUE(comm_knobs.map_options.size_for_load);
}

}  // namespace
}  // namespace eurochip::flow
