// Tests for eurochip::util::trace — span nesting, cross-thread context
// handoff, disabled-mode no-ops, concurrent emitters, Chrome export — and
// for the flow instrumentation built on it (FlowSpanTest: every executed
// step emits exactly one span, with identical structure at any thread
// count).
//
// The tracer is process-global; every test runs against a clean session
// (fixture stops and clears around each body). CI runs this binary under
// ThreadSanitizer and AddressSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "eurochip/flow/flow.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/thread_pool.hpp"
#include "eurochip/util/trace.hpp"

namespace eurochip::util::trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stop();
    clear();
  }
  void TearDown() override {
    stop();
    clear();
  }
};

std::vector<Event> events_named(const std::vector<Event>& events,
                                const std::string& name) {
  std::vector<Event> out;
  for (const Event& ev : events) {
    if (ev.name == name) out.push_back(ev);
  }
  return out;
}

TEST_F(TraceTest, DisabledSessionRecordsNothing) {
  ASSERT_FALSE(enabled());
  {
    EUROCHIP_TRACE_SPAN("should-not-appear", "test");
    instant("also-not", "test");
    Span manual;
    EXPECT_FALSE(manual.active());
    manual.annotate("k", std::string("v"));  // inert span: no-op
    manual.event("nothing");
  }
  EXPECT_TRUE(snapshot().empty());
  const TraceContext ctx = current_context();
  EXPECT_EQ(ctx.parent, 0u);
}

TEST_F(TraceTest, SpansNestViaThreadLocalStack) {
  start();
  SpanId outer_id = 0;
  SpanId inner_id = 0;
  {
    Span outer("outer", "test");
    ASSERT_TRUE(outer.active());
    outer_id = outer.id();
    {
      Span inner("inner", "test");
      inner_id = inner.id();
      EXPECT_NE(inner_id, outer_id);
    }
    // Inner closed: the current span is the outer one again.
    EXPECT_EQ(current_context().parent, outer_id);
  }
  stop();
  const auto events = snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto outer_ev = events_named(events, "outer");
  const auto inner_ev = events_named(events, "inner");
  ASSERT_EQ(outer_ev.size(), 1u);
  ASSERT_EQ(inner_ev.size(), 1u);
  EXPECT_EQ(outer_ev[0].parent, 0u);
  EXPECT_EQ(inner_ev[0].parent, outer_id);
  EXPECT_EQ(inner_ev[0].id, inner_id);
  // The inner interval is contained in the outer one.
  EXPECT_GE(inner_ev[0].start_us, outer_ev[0].start_us);
  EXPECT_LE(inner_ev[0].start_us + inner_ev[0].dur_us,
            outer_ev[0].start_us + outer_ev[0].dur_us);
}

TEST_F(TraceTest, ContextScopeCarriesLineageAcrossThreads) {
  start();
  SpanId parent_id = 0;
  SpanId child_id = 0;
  std::uint64_t child_track = 0;
  {
    ContextScope track_scope(TraceContext{0, 42});
    Span parent("publisher", "test");
    parent_id = parent.id();
    const TraceContext handoff = current_context();
    EXPECT_EQ(handoff.parent, parent_id);
    EXPECT_EQ(handoff.track, 42u);
    std::thread worker([&] {
      // Without adoption this thread would root its own tree.
      ContextScope scope(handoff);
      Span child("executor", "test");
      child_id = child.id();
      child_track = current_context().track;
    });
    worker.join();
  }
  stop();
  const auto events = snapshot();
  const auto child_ev = events_named(events, "executor");
  ASSERT_EQ(child_ev.size(), 1u);
  EXPECT_EQ(child_ev[0].parent, parent_id);
  EXPECT_EQ(child_ev[0].track, 42u);
  EXPECT_EQ(child_track, 42u);
  EXPECT_NE(child_id, parent_id);
  // The two spans were emitted by different threads.
  const auto parent_ev = events_named(events, "publisher");
  ASSERT_EQ(parent_ev.size(), 1u);
  EXPECT_NE(parent_ev[0].tid, child_ev[0].tid);
}

TEST_F(TraceTest, AnnotationsAndEventsAttachToTheirSpan) {
  start();
  SpanId id = 0;
  {
    Span span("annotated", "test");
    id = span.id();
    span.annotate("str", std::string("value"));
    span.annotate("num", 2.5);
    span.annotate("count", static_cast<std::uint64_t>(7));
    span.annotate("flag", true);
    span.event("midpoint", "halfway there");
  }
  stop();
  const auto events = snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto span_ev = events_named(events, "annotated");
  ASSERT_EQ(span_ev.size(), 1u);
  const auto& args = span_ev[0].args;
  const auto has = [&](const std::string& k, const std::string& v) {
    return std::find(args.begin(), args.end(), std::make_pair(k, v)) !=
           args.end();
  };
  EXPECT_TRUE(has("str", "value"));
  EXPECT_TRUE(has("num", "2.5"));
  EXPECT_TRUE(has("count", "7"));
  EXPECT_TRUE(has("flag", "true"));
  const auto inst = events_named(events, "midpoint");
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_EQ(inst[0].kind, Event::Kind::kInstant);
  EXPECT_EQ(inst[0].parent, id);
}

TEST_F(TraceTest, ConcurrentEmittersLoseNothing) {
  start();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      set_thread_name("emitter-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer("outer", "stress");
        Span inner("inner", "stress");
        inner.event("tick");
      }
    });
  }
  for (auto& th : workers) th.join();
  stop();
  const auto events = snapshot();
  EXPECT_EQ(events_named(events, "outer").size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(events_named(events, "inner").size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(events_named(events, "tick").size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  // Span ids are globally unique.
  std::set<SpanId> ids;
  for (const Event& ev : events) {
    if (ev.kind == Event::Kind::kSpan) {
      EXPECT_TRUE(ids.insert(ev.id).second) << "duplicate span id " << ev.id;
    }
  }
  // Every emitter thread registered under its chosen name.
  const auto infos = threads();
  int named = 0;
  for (const ThreadInfo& info : infos) {
    if (info.name.rfind("emitter-", 0) == 0) ++named;
  }
  EXPECT_GE(named, kThreads);
}

TEST_F(TraceTest, ChromeExportIsWellFormed) {
  start();
  {
    Span span("export \"me\"", "test");  // quote forces escaping
    span.annotate("note", std::string("line1\nline2"));
    instant("marker", "test", "point");
  }
  stop();
  const std::string json = export_chrome_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("export \\\"me\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  // Raw control characters would break JSON consumers.
  for (const char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n');
  }
  // Braces and brackets balance (no truncation, escaping intact).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsThreadIdentity) {
  start();
  { Span span("before-clear", "test"); }
  clear();
  EXPECT_TRUE(snapshot().empty());
  { Span span("after-clear", "test"); }
  stop();
  const auto events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after-clear");
  EXPECT_FALSE(threads().empty());
}

// --- flow instrumentation -------------------------------------------------

flow::FlowConfig span_test_config(int threads) {
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.quality = flow::FlowQuality::kOpen;
  cfg.threads = threads;
  return cfg;
}

struct FlowSpanSummary {
  Event flow_span;
  std::vector<Event> step_spans;  ///< in start order
};

FlowSpanSummary traced_flow(const rtl::Module& design, int threads) {
  clear();
  start();
  const auto result =
      flow::run_reference_flow(design, span_test_config(threads));
  stop();
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  FlowSpanSummary summary;
  for (const Event& ev : snapshot()) {
    if (ev.cat == "flow") summary.flow_span = ev;
    if (ev.cat == "flow.step") summary.step_spans.push_back(ev);
  }
  return summary;
}

TEST_F(TraceTest, FlowSpanEveryStepExactlyOnce) {
  const auto design = rtl::designs::counter(8);
  const auto summary = traced_flow(design, /*threads=*/1);
  EXPECT_EQ(summary.flow_span.name, "flow:" + design.name());
  ASSERT_EQ(summary.step_spans.size(), 12u);
  std::set<std::string> names;
  for (const Event& ev : summary.step_spans) {
    EXPECT_TRUE(names.insert(ev.name).second)
        << "step traced twice: " << ev.name;
    // Every step nests directly under the flow span.
    EXPECT_EQ(ev.parent, summary.flow_span.id) << ev.name;
    EXPECT_EQ(ev.name.rfind("step:", 0), 0u) << ev.name;
  }
}

TEST_F(TraceTest, FlowSpanStructureIdenticalAcrossThreadCounts) {
  const auto design = rtl::designs::counter(8);
  const auto serial = traced_flow(design, /*threads=*/1);
  const auto parallel = traced_flow(design, /*threads=*/8);
  ASSERT_EQ(serial.step_spans.size(), parallel.step_spans.size());
  for (std::size_t i = 0; i < serial.step_spans.size(); ++i) {
    EXPECT_EQ(serial.step_spans[i].name, parallel.step_spans[i].name)
        << "step order diverged at index " << i;
  }
  // Kernel and pool spans the steps spawn keep the step as ancestor; at
  // 8 threads the pool batches run on helper threads but still attach.
  clear();
  start();
  const auto result = flow::run_reference_flow(design, span_test_config(8));
  stop();
  ASSERT_TRUE(result.ok());
  const auto events = snapshot();
  std::set<SpanId> known_ids;
  for (const Event& ev : events) {
    if (ev.kind == Event::Kind::kSpan) known_ids.insert(ev.id);
  }
  for (const Event& ev : events) {
    if (ev.cat == "pool" || ev.cat == "kernel") {
      EXPECT_TRUE(ev.parent != 0 && known_ids.count(ev.parent) == 1)
          << ev.name << " is unparented";
    }
  }
}

}  // namespace
}  // namespace eurochip::util::trace
