#include <gtest/gtest.h>

#include "eurochip/econ/yield.hpp"
#include "eurochip/pdk/registry.hpp"

namespace eurochip::econ {
namespace {

TEST(YieldTest, YieldDecreasesWithArea) {
  YieldModel y;
  y.defect_density_per_cm2 = 0.2;
  double prev = 1.1;
  for (double area : {1.0, 10.0, 50.0, 100.0, 400.0, 800.0}) {
    const double v = y.die_yield(area);
    EXPECT_LT(v, prev) << area;
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(y.die_yield(0.0), 1.0);
}

TEST(YieldTest, AdvancedNodesDirtier) {
  const auto n130 = pdk::standard_node("sky130ish").value();
  const auto n7 = pdk::standard_node("commercial7").value();
  const auto n2 = pdk::standard_node("commercial2").value();
  EXPECT_LT(yield_for_node(n130).defect_density_per_cm2,
            yield_for_node(n7).defect_density_per_cm2);
  EXPECT_LT(yield_for_node(n7).defect_density_per_cm2,
            yield_for_node(n2).defect_density_per_cm2);
}

TEST(DieCostTest, DicePerWaferDecreasesWithArea) {
  EXPECT_GT(DieCostModel::dice_per_wafer(10.0),
            DieCostModel::dice_per_wafer(100.0));
  EXPECT_GE(DieCostModel::dice_per_wafer(10000.0), 1.0);
}

TEST(DieCostTest, GoodDieCostGrowsSuperlinearlyWithArea) {
  const auto node = pdk::standard_node("commercial7").value();
  const auto model = DieCostModel::for_node(node);
  const double c50 = model.good_die_cost_eur(node, 50.0);
  const double c200 = model.good_die_cost_eur(node, 200.0);
  // 4x area -> more than 4x cost (yield loss compounds the area ratio).
  EXPECT_GT(c200, 4.0 * c50);
}

TEST(DieCostTest, AdvancedWafersCostMore) {
  const auto n130 = pdk::standard_node("sky130ish").value();
  const auto n2 = pdk::standard_node("commercial2").value();
  EXPECT_GT(DieCostModel::wafer_cost_eur(n2),
            5.0 * DieCostModel::wafer_cost_eur(n130));
}

TEST(ChipletTest, SmallDiesStayMonolithic) {
  const auto node = pdk::standard_node("commercial7").value();
  const auto model = DieCostModel::for_node(node);
  // At 20 mm^2, packaging overhead dominates: monolithic wins.
  EXPECT_LT(model.monolithic_cost_eur(node, 20.0),
            model.chiplet_cost_eur(node, 20.0, 4));
}

TEST(ChipletTest, LargeDiesFavorChiplets) {
  const auto node = pdk::standard_node("commercial7").value();
  const auto model = DieCostModel::for_node(node);
  // At reticle-filling sizes, yield loss makes monolithic lose.
  EXPECT_GT(model.monolithic_cost_eur(node, 600.0),
            model.chiplet_cost_eur(node, 600.0, 4));
}

TEST(ChipletTest, CrossoverExistsOnAdvancedNodes) {
  const auto node = pdk::standard_node("commercial7").value();
  const auto model = DieCostModel::for_node(node);
  const double crossover = model.crossover_area_mm2(node, 4);
  EXPECT_GT(crossover, 20.0);
  EXPECT_LT(crossover, 1000.0);
  // At the crossover, chiplets are indeed cheaper just above it.
  EXPECT_LT(model.chiplet_cost_eur(node, crossover * 1.2, 4),
            model.monolithic_cost_eur(node, crossover * 1.2));
}

TEST(ChipletTest, CrossoverLaterOnCleanNodes) {
  // On a mature, low-defect node, monolithic stays competitive longer.
  const auto clean = pdk::standard_node("sky130ish").value();
  const auto dirty = pdk::standard_node("commercial2").value();
  const auto model_clean = DieCostModel::for_node(clean);
  const auto model_dirty = DieCostModel::for_node(dirty);
  const double c_clean = model_clean.crossover_area_mm2(clean, 4);
  const double c_dirty = model_dirty.crossover_area_mm2(dirty, 4);
  if (c_clean > 0.0 && c_dirty > 0.0) {
    EXPECT_GT(c_clean, c_dirty);
  } else {
    // Clean node may never cross over within the search range.
    EXPECT_GT(c_dirty, 0.0);
  }
}

TEST(ChipletTest, OneChipletEqualsMonolithic) {
  const auto node = pdk::standard_node("commercial7").value();
  const auto model = DieCostModel::for_node(node);
  EXPECT_DOUBLE_EQ(model.chiplet_cost_eur(node, 100.0, 1),
                   model.monolithic_cost_eur(node, 100.0));
}

}  // namespace
}  // namespace eurochip::econ
