#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/rng.hpp"
#include "eurochip/rtl/ir.hpp"
#include "eurochip/rtl/simulator.hpp"

namespace eurochip::rtl {
namespace {

TEST(ModuleTest, CounterStructure) {
  const Module m = designs::counter(8);
  EXPECT_TRUE(m.check().ok());
  EXPECT_EQ(m.inputs().size(), 1u);
  EXPECT_EQ(m.outputs().size(), 1u);
  EXPECT_EQ(m.regs().size(), 1u);
  EXPECT_GT(m.rtl_lines(), 0u);
}

TEST(ModuleTest, WidthValidation) {
  Module m("t");
  EXPECT_THROW(m.input("x", 0), std::invalid_argument);
  EXPECT_THROW(m.input("x", 65), std::invalid_argument);
  EXPECT_THROW(m.lit(4, 2), std::invalid_argument);  // 4 needs 3 bits
}

TEST(ModuleTest, OperandWidthMismatchRejected) {
  Module m("t");
  const auto a = m.input("a", 4);
  const auto b = m.input("b", 5);
  EXPECT_THROW(m.add(m.sig(a), m.sig(b)), std::invalid_argument);
  EXPECT_THROW(m.mux(m.sig(a), m.sig(a), m.sig(a)), std::invalid_argument);
}

TEST(ModuleTest, SliceOutOfRangeRejected) {
  Module m("t");
  const auto a = m.input("a", 4);
  EXPECT_THROW(m.slice(m.sig(a), 2, 3), std::invalid_argument);
  EXPECT_NO_THROW(m.slice(m.sig(a), 2, 2));
}

TEST(ModuleTest, ResizeExtendsAndTruncates) {
  Module m("t");
  const auto a = m.input("a", 4);
  EXPECT_EQ(m.expr(m.resize(m.sig(a), 8)).width, 8);
  EXPECT_EQ(m.expr(m.resize(m.sig(a), 2)).width, 2);
  EXPECT_EQ(m.expr(m.resize(m.sig(a), 4)).width, 4);
}

TEST(ModuleTest, RegRequiresBinding) {
  Module m("t");
  (void)m.reg("r", 4);
  EXPECT_FALSE(m.check().ok());  // next-state never set
}

TEST(SimulatorTest, CounterCounts) {
  const Module m = designs::counter(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  EXPECT_EQ(sim->step({1})[0], 0u);  // pre-edge output
  EXPECT_EQ(sim->step({1})[0], 1u);
  EXPECT_EQ(sim->step({0})[0], 2u);  // disabled: holds
  EXPECT_EQ(sim->step({1})[0], 2u);
  EXPECT_EQ(sim->step({1})[0], 3u);
}

TEST(SimulatorTest, CounterWraps) {
  const Module m = designs::counter(3);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  std::uint64_t last = 0;
  for (int i = 0; i < 9; ++i) last = sim->step({1})[0];
  EXPECT_EQ(last, 0u);  // 8 increments wrapped a 3-bit counter
}

TEST(SimulatorTest, AdderMatchesReference) {
  const Module m = designs::adder(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  for (std::uint64_t a : {0u, 1u, 17u, 255u}) {
    for (std::uint64_t b : {0u, 3u, 128u, 255u}) {
      const auto out = sim->eval({a, b});
      EXPECT_EQ(out[0], (a + b) & 0xFF) << a << "+" << b;
      EXPECT_EQ(out[1], (a + b) >> 8) << a << "+" << b;
    }
  }
}

TEST(SimulatorTest, AluOperations) {
  const Module m = designs::alu(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  // Result registers one cycle later.
  const auto run = [&](std::uint64_t a, std::uint64_t b, std::uint64_t op) {
    (void)sim->step({a, b, op});
    return sim->step({a, b, op})[0];
  };
  EXPECT_EQ(run(20, 22, 0), 42u);         // add
  EXPECT_EQ(run(20, 22, 1), 254u);        // sub (wraps)
  EXPECT_EQ(run(0xF0, 0x3C, 2), 0x30u);   // and
  EXPECT_EQ(run(0xF0, 0x3C, 3), 0xFCu);   // or
  EXPECT_EQ(run(0xF0, 0x3C, 4), 0xCCu);   // xor
  EXPECT_EQ(run(3, 7, 5), 1u);            // slt
  EXPECT_EQ(run(7, 3, 5), 0u);
}

TEST(SimulatorTest, GrayEncoderProperty) {
  const Module m = designs::gray_encoder(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  // Successive gray codes differ in exactly one bit.
  std::uint64_t prev = sim->eval({0})[0];
  for (std::uint64_t x = 1; x < 256; ++x) {
    const std::uint64_t g = sim->eval({x})[0];
    EXPECT_EQ(__builtin_popcountll(prev ^ g), 1) << x;
    prev = g;
  }
}

TEST(SimulatorTest, PopcountMatchesBuiltin) {
  const Module m = designs::popcount(16);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  for (std::uint64_t x : {0uLL, 1uLL, 0xFFFFuLL, 0xAAAAuLL, 0x1234uLL}) {
    EXPECT_EQ(sim->eval({x})[0],
              static_cast<std::uint64_t>(__builtin_popcountll(x)));
  }
}

TEST(SimulatorTest, PriorityEncoderFindsHighestBit) {
  const Module m = designs::priority_encoder(16);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->eval({0})[1], 0u);  // invalid
  for (int hi = 0; hi < 16; ++hi) {
    const std::uint64_t x = (1uLL << hi) | (hi > 2 ? 0b101uLL : 0uLL);
    const auto out = sim->eval({x});
    EXPECT_EQ(out[0], static_cast<std::uint64_t>(hi));
    EXPECT_EQ(out[1], 1u);
  }
}

TEST(SimulatorTest, LfsrVisitsManyStates) {
  const Module m = designs::lfsr(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 255; ++i) seen.insert(sim->step({1})[0]);
  EXPECT_EQ(seen.size(), 255u);  // maximal period for primitive taps
  for (std::uint64_t s : seen) EXPECT_NE(s, 0u);  // all-zero is absorbing
}

TEST(SimulatorTest, MultiplierMatchesReference) {
  const Module m = designs::multiplier(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  for (std::uint64_t a : {0u, 3u, 15u, 255u}) {
    for (std::uint64_t b : {0u, 7u, 100u, 255u}) {
      (void)sim->step({a, b});
      EXPECT_EQ(sim->step({a, b})[0], a * b);
    }
  }
}

class MultiplierVariantTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierVariantTest, EquivalentToReferenceVariant) {
  Module ref = designs::multiplier_variant(6, 0);
  Module var = designs::multiplier_variant(6, GetParam());
  auto sa = Simulator::create(ref);
  auto sb = Simulator::create(var);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_TRUE(lockstep_compare(*sa, *sb, {6, 6}, 99, 200));
}

INSTANTIATE_TEST_SUITE_P(Variants, MultiplierVariantTest,
                         ::testing::Values(1, 2));

class AdderVariantTest : public ::testing::TestWithParam<int> {};

TEST_P(AdderVariantTest, EquivalentToReferenceVariant) {
  Module ref = designs::adder_variant(10, 0);
  Module var = designs::adder_variant(10, GetParam());
  auto sa = Simulator::create(ref);
  auto sb = Simulator::create(var);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_TRUE(lockstep_compare(*sa, *sb, {10, 10}, 1234, 500));
}

INSTANTIATE_TEST_SUITE_P(Variants, AdderVariantTest,
                         ::testing::Values(1, 2, 3));

TEST(SimulatorTest, MiniCpuWritebackAndForwarding) {
  const Module m = designs::mini_cpu_datapath(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  // x1 = 0 + 5 (imm)
  (void)sim->step({0, 0, 0, 1, 5, 1, 1});
  // x2 = 0 + 7 (imm)
  (void)sim->step({0, 0, 0, 2, 7, 1, 1});
  // x3 = x1 + x2
  (void)sim->step({0, 1, 2, 3, 0, 0, 1});
  // Read x3 via output port.
  const auto out = sim->step({0, 0, 0, 0, 0, 0, 0});
  EXPECT_EQ(out[1], 12u);
}

TEST(SimulatorTest, ShiftRegisterDelaysByDepth) {
  const Module m = designs::shift_register(8, 3);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  (void)sim->step({42});
  (void)sim->step({0});
  (void)sim->step({0});
  EXPECT_EQ(sim->step({0})[0], 42u);
}

TEST(SimulatorTest, FirFilterImpulseResponse) {
  const Module m = designs::fir_filter(8, 4);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  // Impulse of 1: the output sequence equals the coefficients (1,2,3,1)
  // delayed by the pipeline registers.
  std::vector<std::uint64_t> response;
  (void)sim->step({1});
  for (int i = 0; i < 6; ++i) response.push_back(sim->step({0})[0]);
  // y registers one cycle after the delay line; expect coefficient train.
  std::vector<std::uint64_t> nonzero;
  for (auto v : response) {
    if (v != 0) nonzero.push_back(v);
  }
  EXPECT_EQ(nonzero, (std::vector<std::uint64_t>{1, 2, 3, 1}));
}

TEST(SimulatorTest, TrafficFsmCyclesThroughStates) {
  Module m = designs::traffic_fsm();
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  std::vector<std::uint64_t> states;
  for (int i = 0; i < 5; ++i) states.push_back(sim->step({1})[0]);
  EXPECT_EQ(states, (std::vector<std::uint64_t>{0, 1, 2, 3, 0}));
  // Green only in state 2.
  sim->reset();
  (void)sim->step({1});
  (void)sim->step({1});
  EXPECT_EQ(sim->step({1})[1], 1u);
}

TEST(SimulatorTest, Crc8MatchesSoftwareReference) {
  Module m = designs::crc8();
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  // Software CRC-8 (poly 0x07, init 0) over a byte stream.
  const std::vector<std::uint64_t> stream = {0x31, 0x32, 0x33, 0xFF, 0x00};
  std::uint8_t ref = 0;
  for (std::uint64_t byte : stream) {
    ref = static_cast<std::uint8_t>(ref ^ byte);
    for (int i = 0; i < 8; ++i) {
      ref = (ref & 0x80) != 0
                ? static_cast<std::uint8_t>((ref << 1) ^ 0x07)
                : static_cast<std::uint8_t>(ref << 1);
    }
    (void)sim->step({byte, 1});
  }
  EXPECT_EQ(sim->step({0, 0})[0], ref);
}

TEST(SimulatorTest, BarrelShifterMatchesShift) {
  Module m = designs::barrel_shifter(16);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  for (std::uint64_t x : {0x1uLL, 0xABCDuLL, 0xFFFFuLL}) {
    for (std::uint64_t amount = 0; amount < 16; ++amount) {
      EXPECT_EQ(sim->eval({x, amount})[0], (x << amount) & 0xFFFF)
          << x << "<<" << amount;
    }
  }
}

TEST(SimulatorTest, Sorter4ProducesSortedOutputs) {
  Module m = designs::sorter4(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  util::Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> in = {rng.next() & 0xFF, rng.next() & 0xFF,
                                     rng.next() & 0xFF, rng.next() & 0xFF};
    const auto out = sim->eval(in);
    std::vector<std::uint64_t> expect = in;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out, expect);
  }
}

TEST(SimulatorTest, SerializerShiftsOutLsbFirst) {
  Module m = designs::serializer(8);
  auto sim = Simulator::create(m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  (void)sim->step({0b10110010, 1});  // load
  std::uint64_t received = 0;
  for (int bit = 0; bit < 8; ++bit) {
    received |= sim->step({0, 0})[0] << bit;
  }
  EXPECT_EQ(received, 0b10110010u);
}

TEST(DesignCatalogTest, AllEntriesCheckAndSimulate) {
  for (auto& entry : designs::standard_catalog()) {
    EXPECT_TRUE(entry.module.check().ok()) << entry.name;
    auto sim = Simulator::create(entry.module);
    ASSERT_TRUE(sim.ok()) << entry.name;
    std::vector<std::uint64_t> zeros(sim->num_inputs(), 0);
    (void)sim->step(zeros);  // must not crash
  }
}

TEST(DesignCatalogTest, RtlLinesArePositiveAndModest) {
  for (auto& entry : designs::standard_catalog()) {
    EXPECT_GT(entry.module.rtl_lines(), 0u) << entry.name;
    EXPECT_LT(entry.module.rtl_lines(), 2000u) << entry.name;
  }
}

}  // namespace
}  // namespace eurochip::rtl
