// Tests for eurochip::hub — the concurrent flow-job execution engine.
//
// The concurrency-sensitive tests (parallel execution, stress) are written
// to run cleanly under ThreadSanitizer; CI builds this binary with
// -fsanitize=thread in a dedicated job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "eurochip/hub/job.hpp"
#include "eurochip/hub/metrics.hpp"
#include "eurochip/hub/scheduler.hpp"
#include "eurochip/hub/server.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"

namespace eurochip::hub {
namespace {

using edu::LearnerTier;

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Cancel-aware sleep job: sleeps `ms` in 1 ms slices, checking the token.
JobSpec sleep_job(std::string name, double ms,
                  LearnerTier tier = LearnerTier::kAdvanced,
                  std::size_t member = 0) {
  JobSpec spec;
  spec.name = std::move(name);
  spec.tier = tier;
  spec.member = member;
  spec.work = [ms](JobContext& ctx) -> util::Status {
    const auto end =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    while (std::chrono::steady_clock::now() < end) {
      if (ctx.cancel.cancel_requested()) {
        return util::Status::Cancelled("observed cancel");
      }
      if (ctx.cancel.deadline_passed()) {
        return util::Status::DeadlineExceeded("observed deadline");
      }
      sleep_ms(1.0);
    }
    return util::Status::Ok();
  };
  return spec;
}

/// Records completion order under a mutex (for determinism tests).
struct OrderLog {
  std::mutex mu;
  std::vector<std::string> order;
  void add(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(name);
  }
};

JobSpec logging_job(std::string name, OrderLog* log,
                    LearnerTier tier = LearnerTier::kAdvanced,
                    std::size_t member = 0) {
  JobSpec spec;
  spec.name = name;
  spec.tier = tier;
  spec.member = member;
  spec.work = [name, log](JobContext&) -> util::Status {
    log->add(name);
    return util::Status::Ok();
  };
  return spec;
}

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("x"), 0u);
  m.increment("x");
  m.increment("x", 4);
  EXPECT_EQ(m.counter("x"), 5u);
  m.set_gauge("g", 2.5);
  m.add_gauge("g", 0.5);
  EXPECT_DOUBLE_EQ(m.gauge("g"), 3.0);
}

TEST(MetricsTest, HistogramQuantilesOrderedAndClamped) {
  MetricsRegistry m;
  for (int i = 1; i <= 100; ++i) m.observe("lat", static_cast<double>(i));
  const auto h = m.histogram("lat");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_NEAR(h.mean, 50.5, 1e-9);
  EXPECT_LE(h.p50, h.p90);
  EXPECT_LE(h.p90, h.p99);
  EXPECT_GE(h.p50, h.min);
  EXPECT_LE(h.p99, h.max);
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry m;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < kPerThread; ++i) {
        m.increment("hits");
        m.observe("obs", 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.counter("hits"), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m.histogram("obs").count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MetricsTest, RenderListsEveryMetric) {
  MetricsRegistry m;
  m.increment("jobs_submitted", 3);
  m.set_gauge("running", 1.0);
  m.observe("run_ms", 12.0);
  const std::string text = m.render();
  EXPECT_NE(text.find("jobs_submitted"), std::string::npos);
  EXPECT_NE(text.find("running"), std::string::npos);
  EXPECT_NE(text.find("run_ms"), std::string::npos);
}

TEST(MetricsTest, ObserveClampsInvalidValuesAndCountsThem) {
  MetricsRegistry m;
  m.observe("lat", std::numeric_limits<double>::quiet_NaN());
  m.observe("lat", -5.0);
  m.observe("lat", std::numeric_limits<double>::infinity());
  m.observe("lat", 2.0);
  const auto h = m.histogram("lat");
  EXPECT_EQ(h.count, 4u);  // clamped observations still count
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 2.0);
  EXPECT_TRUE(std::isfinite(h.sum));
  EXPECT_DOUBLE_EQ(h.sum, 2.0);
  EXPECT_EQ(m.counter("lat.invalid"), 3u);
  EXPECT_EQ(m.counter("other.invalid"), 0u);
}

TEST(MetricsTest, PrometheusExpositionShape) {
  MetricsRegistry m;
  m.increment("jobs_submitted", 3);
  m.set_gauge("queue_depth", 2.0);
  m.observe("run_ms", 12.0);
  m.observe("run_ms", 24.0);
  const std::string text = m.export_prometheus();
  EXPECT_NE(text.find("# TYPE eurochip_jobs_submitted counter\n"
                      "eurochip_jobs_submitted 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE eurochip_queue_depth gauge\n"
                      "eurochip_queue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE eurochip_run_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("eurochip_run_ms_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("eurochip_run_ms_sum 36\n"), std::string::npos);
  EXPECT_NE(text.find("eurochip_run_ms_count 2\n"), std::string::npos);

  // Internal dotted names sanitize to Prometheus-legal underscores.
  m.increment("step_synth.map_ms.invalid");
  EXPECT_NE(m.export_prometheus().find("eurochip_step_synth_map_ms_invalid 1"),
            std::string::npos);
}

// --- TierScheduler --------------------------------------------------------

TEST(SchedulerTest, DeterministicOrderingAcrossInstances) {
  const auto drive = [] {
    TierScheduler s;
    s.push(1, 0, LearnerTier::kBeginner);
    s.push(2, 1, LearnerTier::kAdvanced);
    s.push(3, 0, LearnerTier::kIntermediate);
    s.push(4, 2, LearnerTier::kAdvanced);
    s.push(5, 1, LearnerTier::kBeginner);
    std::vector<JobId> order;
    while (auto id = s.pop()) order.push_back(*id);
    return order;
  };
  const auto a = drive();
  const auto b = drive();
  EXPECT_EQ(a, b);
  // Strict tier priority: both advanced jobs first, then intermediate,
  // then the beginners.
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0], 2u);
  EXPECT_EQ(a[1], 4u);
  EXPECT_EQ(a[2], 3u);
  EXPECT_EQ(a[3], 1u);
  EXPECT_EQ(a[4], 5u);
}

TEST(SchedulerTest, HigherTierNeverWaitsBehindLowerTierBacklog) {
  TierScheduler s;
  for (JobId id = 1; id <= 50; ++id) {
    s.push(id, static_cast<std::size_t>(id), LearnerTier::kBeginner);
  }
  s.push(99, 0, LearnerTier::kAdvanced);
  EXPECT_EQ(s.pop().value(), 99u);  // jumps the whole backlog
}

TEST(SchedulerTest, AgingPreventsStarvation) {
  SchedulerOptions opt;
  opt.starvation_patience = 3;
  TierScheduler s(opt);
  s.push(1, 100, LearnerTier::kBeginner);
  for (JobId id = 2; id <= 40; ++id) s.push(id, 0, LearnerTier::kAdvanced);
  std::vector<JobId> order;
  while (auto id = s.pop()) order.push_back(*id);
  const auto pos = std::find(order.begin(), order.end(), 1u) - order.begin();
  // Two promotions (beginner -> intermediate -> advanced) at patience 3,
  // then member fairness puts the starving member ahead of the flooder.
  EXPECT_LT(pos, 10);
  EXPECT_EQ(order.size(), 40u);
}

TEST(SchedulerTest, MemberFairnessInterleavesWithinTier) {
  TierScheduler s;
  for (JobId id = 1; id <= 10; ++id) s.push(id, 0, LearnerTier::kAdvanced);
  s.push(11, 1, LearnerTier::kAdvanced);
  s.push(12, 1, LearnerTier::kAdvanced);
  std::vector<JobId> order;
  while (auto id = s.pop()) order.push_back(*id);
  // Member 1's two jobs land within the first four dispatches instead of
  // queueing behind member 0's ten.
  const auto pos11 = std::find(order.begin(), order.end(), 11u) - order.begin();
  const auto pos12 = std::find(order.begin(), order.end(), 12u) - order.begin();
  EXPECT_LT(pos11, 4);
  EXPECT_LT(pos12, 4);
}

TEST(SchedulerTest, RemoveDropsQueuedJob) {
  TierScheduler s;
  s.push(1, 0, LearnerTier::kAdvanced);
  s.push(2, 0, LearnerTier::kAdvanced);
  EXPECT_TRUE(s.remove(1));
  EXPECT_FALSE(s.remove(1));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.pop().value(), 2u);
}

// --- JobServer: scheduling determinism & fairness ------------------------

TEST(JobServerTest, PausedSubmissionExecutesInDeterministicTierOrder) {
  const auto run_once = [] {
    JobServer::Options opt;
    opt.capacity = 1;
    opt.start_paused = true;
    JobServer server(opt);
    OrderLog log;
    (void)server.submit(logging_job("beg0", &log, LearnerTier::kBeginner, 0));
    (void)server.submit(logging_job("adv1", &log, LearnerTier::kAdvanced, 1));
    (void)server.submit(logging_job("int2", &log, LearnerTier::kIntermediate, 2));
    (void)server.submit(logging_job("adv3", &log, LearnerTier::kAdvanced, 3));
    server.start();
    server.drain();
    return log.order;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  const std::vector<std::string> expected = {"adv1", "adv3", "int2", "beg0"};
  EXPECT_EQ(a, expected);
}

TEST(JobServerTest, AdvancedJobJumpsBeginnerBacklog) {
  JobServer::Options opt;
  opt.capacity = 1;
  opt.start_paused = true;
  JobServer server(opt);
  OrderLog log;
  for (int i = 0; i < 8; ++i) {
    (void)server.submit(logging_job("beg" + std::to_string(i), &log,
                                    LearnerTier::kBeginner,
                                    static_cast<std::size_t>(i)));
  }
  (void)server.submit(logging_job("adv", &log, LearnerTier::kAdvanced, 99));
  server.start();
  server.drain();
  ASSERT_EQ(log.order.size(), 9u);
  EXPECT_EQ(log.order.front(), "adv");
}

// --- JobServer: execution, retries, timeouts, cancellation ---------------

TEST(JobServerTest, TransientFailureRetriesThenSucceeds) {
  JobServer::Options opt;
  opt.capacity = 1;
  JobServer server(opt);
  JobSpec spec;
  spec.name = "flaky";
  spec.max_attempts = 5;
  spec.backoff_base_ms = 1.0;
  spec.backoff_cap_ms = 4.0;
  spec.work = [](JobContext& ctx) -> util::Status {
    if (ctx.attempt < 3) {
      return util::Status::ResourceExhausted("transient congestion");
    }
    return util::Status::Ok();
  };
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kSucceeded);
  EXPECT_EQ(rec->attempts, 3);
  EXPECT_EQ(server.metrics().counter("jobs_retried"), 2u);
  EXPECT_EQ(server.metrics().counter("jobs_succeeded"), 1u);
}

TEST(JobServerTest, FlightRecordTellsTheJobsStory) {
  JobServer::Options opt;
  opt.capacity = 1;
  JobServer server(opt);
  JobSpec spec;
  spec.name = "flaky";
  spec.max_attempts = 3;
  spec.backoff_base_ms = 1.0;
  spec.backoff_cap_ms = 2.0;
  spec.work = [](JobContext& ctx) -> util::Status {
    flow::StepRecord step;
    step.name = "synth";
    step.runtime_ms = 0.5;
    ctx.steps.push_back(step);
    if (ctx.attempt < 2) {
      return util::Status::ResourceExhausted("transient congestion");
    }
    return util::Status::Ok();
  };
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->state, JobState::kSucceeded);

  // The record replays the whole story in order: submitted, started on a
  // worker, first attempt (with its step), a retry backoff, the second
  // attempt, and the terminal transition.
  std::vector<std::string> kinds;
  for (const FlightEntry& e : rec->flight) kinds.push_back(e.kind);
  const std::vector<std::string> expected = {"submit", "start",  "attempt",
                                             "step",   "retry",  "attempt",
                                             "step",   "finish"};
  EXPECT_EQ(kinds, expected);
  for (std::size_t i = 1; i < rec->flight.size(); ++i) {
    EXPECT_GE(rec->flight[i].t_ms, 0.0);
  }
  EXPECT_EQ(rec->flight.front().t_ms, 0.0);
  EXPECT_EQ(rec->flight.back().label, "succeeded");

  const std::string text = render_flight_record(*rec);
  EXPECT_NE(text.find("flight record: job " + std::to_string(rec->id)),
            std::string::npos);
  EXPECT_NE(text.find("'flaky' (succeeded, 2 attempts)"), std::string::npos);
  EXPECT_NE(text.find("backoff"), std::string::npos);
  EXPECT_NE(text.find("synth"), std::string::npos);
}

TEST(JobServerTest, NonTransientFailureDoesNotRetry) {
  JobServer server({});
  JobSpec spec;
  spec.name = "bad-args";
  spec.max_attempts = 5;
  spec.work = [](JobContext&) -> util::Status {
    return util::Status::InvalidArgument("never valid");
  };
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_EQ(rec->attempts, 1);
  EXPECT_EQ(rec->status.code(), util::ErrorCode::kInvalidArgument);
}

TEST(JobServerTest, RetriesAreBoundedByMaxAttempts) {
  JobServer server({});
  JobSpec spec;
  spec.name = "always-congested";
  spec.max_attempts = 3;
  spec.backoff_base_ms = 1.0;
  spec.backoff_cap_ms = 2.0;
  spec.work = [](JobContext&) -> util::Status {
    return util::Status::ResourceExhausted("still congested");
  };
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_EQ(rec->attempts, 3);
  EXPECT_EQ(server.metrics().counter("jobs_retried"), 2u);
}

TEST(JobServerTest, BackoffDelayIsBoundedDeterministicAndGrowing) {
  JobSpec spec;
  spec.backoff_base_ms = 2.0;
  spec.backoff_cap_ms = 50.0;
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  double prev_floor = 0.0;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const double a = backoff_delay_ms(spec, attempt, rng_a);
    const double b = backoff_delay_ms(spec, attempt, rng_b);
    EXPECT_DOUBLE_EQ(a, b) << "same seed, same schedule";
    const double floor = std::min(50.0, 2.0 * std::pow(2.0, attempt - 1));
    EXPECT_GE(a, floor);
    EXPECT_LE(a, 50.0 * 1.5);
    EXPECT_GE(floor, prev_floor) << "exponential floor is monotone";
    prev_floor = floor;
  }
}

TEST(JobServerTest, RunningJobDeadlineTimesOut) {
  JobServer server({});
  JobSpec spec = sleep_job("slowpoke", 2000.0);
  spec.deadline_ms = 30.0;
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kTimedOut);
  EXPECT_EQ(rec->status.code(), util::ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(server.metrics().counter("jobs_timed_out"), 1u);
}

TEST(JobServerTest, QueuedJobDeadlineTimesOutWithoutRunning) {
  JobServer::Options opt;
  opt.capacity = 1;
  JobServer server(opt);
  const auto blocker = server.submit(sleep_job("blocker", 80.0));
  ASSERT_TRUE(blocker.ok());
  JobSpec starved = sleep_job("starved", 1.0);
  starved.deadline_ms = 20.0;  // expires while the blocker holds the worker
  const auto id = server.submit(std::move(starved));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kTimedOut);
  EXPECT_EQ(rec->attempts, 0) << "never started";
  EXPECT_LT(rec->start_ms, 0.0);
}

TEST(JobServerTest, CancelRunningJob) {
  JobServer server({});
  const auto id = server.submit(sleep_job("cancel-me", 5000.0));
  ASSERT_TRUE(id.ok());
  sleep_ms(10.0);  // let it start
  EXPECT_TRUE(server.cancel(*id));
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kCancelled);
  EXPECT_FALSE(server.cancel(*id)) << "already terminal";
}

TEST(JobServerTest, CancelQueuedJob) {
  JobServer::Options opt;
  opt.capacity = 1;
  opt.start_paused = true;
  JobServer server(opt);
  const auto id = server.submit(sleep_job("never-runs", 10.0));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(server.cancel(*id));
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kCancelled);
  EXPECT_LT(rec->start_ms, 0.0) << "cancelled before dispatch";
  server.start();
  server.drain();
}

TEST(JobServerTest, SubmitAfterShutdownFails) {
  JobServer server({});
  server.shutdown();
  const auto id = server.submit(sleep_job("late", 1.0));
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), util::ErrorCode::kFailedPrecondition);
}

TEST(JobServerTest, ShutdownDrainsQueuedWork) {
  JobServer::Options opt;
  opt.capacity = 2;
  JobServer server(opt);
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) {
    const auto id = server.submit(sleep_job("j" + std::to_string(i), 5.0));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  server.shutdown(JobServer::DrainMode::kDrain);
  for (const JobId id : ids) {
    const auto rec = server.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->state, JobState::kSucceeded);
  }
}

// --- JobServer: tier gating through the EnablementHub --------------------

TEST(JobServerTest, HubGateRejectsBeginnerOnCommercialNode) {
  core::EnablementHub hub(pdk::standard_registry(), {});
  ASSERT_TRUE(hub.enable_technology("sky130ish").ok());
  ASSERT_TRUE(hub.enable_technology("commercial65").ok());
  core::UniversityProfile uni;
  uni.name = "TU Test";
  const std::size_t member = hub.add_member(uni);

  JobServer::Options opt = JobServer::options_for(hub);
  EXPECT_EQ(opt.capacity, hub.options().job_capacity);
  JobServer server(opt);

  JobSpec gated = sleep_job("beginner-commercial", 1.0,
                            LearnerTier::kBeginner, member);
  gated.node_name = "commercial65";
  const auto rejected = server.submit(std::move(gated));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::ErrorCode::kPermissionDenied);
  EXPECT_EQ(server.metrics().counter("jobs_rejected"), 1u);

  JobSpec open = sleep_job("beginner-open", 1.0, LearnerTier::kBeginner, member);
  open.node_name = "sky130ish";
  const auto accepted = server.submit(std::move(open));
  ASSERT_TRUE(accepted.ok());
  const auto rec = server.wait(*accepted);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kSucceeded);
}

// --- JobServer: real flows in parallel -----------------------------------

TEST(JobServerTest, ExecutesRealFlowsConcurrently) {
  JobServer::Options opt;
  opt.capacity = 4;
  JobServer server(opt);

  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.quality = flow::FlowQuality::kOpen;

  const auto counter =
      std::make_shared<const rtl::Module>(rtl::designs::counter(4));
  const auto adder = std::make_shared<const rtl::Module>(rtl::designs::adder(4));
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    auto spec = make_flow_job("flow" + std::to_string(i),
                              i % 2 == 0 ? counter : adder, cfg);
    const auto id = server.submit(std::move(spec));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const auto records = server.drain();
  ASSERT_EQ(records.size(), 4u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.state, JobState::kSucceeded) << rec.status.to_string();
    EXPECT_FALSE(rec.steps.empty());
    EXPECT_GT(rec.ppa.cell_count, 0u);
    EXPECT_GT(rec.run_ms, 0.0);
  }
  // Per-step durations were harvested into the metrics registry.
  EXPECT_EQ(server.metrics().histogram("step_place_ms").count, 4u);
  EXPECT_EQ(server.metrics().histogram("run_ms").count, 4u);
}

TEST(JobServerTest, FlowJobDeadlineCancelsBetweenSteps) {
  JobServer server({});
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  auto spec = make_flow_job(
      "doomed", std::make_shared<const rtl::Module>(rtl::designs::alu(8)), cfg);
  spec.deadline_ms = 1.0;  // expires almost immediately
  const auto id = server.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, JobState::kTimedOut);
}

// --- JobServer: parallel overlap + measured queue report ------------------

TEST(JobServerTest, MeasuredQueueReportMatchesRecords) {
  JobServer::Options opt;
  opt.capacity = 2;
  JobServer server(opt);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.submit(sleep_job("s" + std::to_string(i), 10.0)).ok());
  }
  const auto records = server.drain();
  const auto report = server.measured_queue_report();
  ASSERT_EQ(report.outcomes.size(), 6u);
  EXPECT_GT(report.makespan_h, 0.0);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0 + 1e-9);
  double max_finish = 0.0;
  for (const auto& rec : records) {
    max_finish = std::max(max_finish, rec.finish_ms);
  }
  EXPECT_NEAR(report.makespan_h, max_finish, 1.0);
}

TEST(JobServerTest, SleepJobsOverlapAcrossWorkers) {
  // Sleep jobs parallelize even on one core, so this asserts genuine
  // concurrency: peak in-flight > 1 and wall time well under the serial sum.
  JobServer::Options opt;
  opt.capacity = 4;
  JobServer server(opt);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    JobSpec spec;
    spec.name = "p" + std::to_string(i);
    spec.work = [&in_flight, &peak](JobContext&) -> util::Status {
      const int now = in_flight.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now && !peak.compare_exchange_weak(expected, now)) {
      }
      sleep_ms(30.0);
      in_flight.fetch_sub(1);
      return util::Status::Ok();
    };
    ASSERT_TRUE(server.submit(std::move(spec)).ok());
  }
  server.drain();
  EXPECT_GT(peak.load(), 1) << "jobs never overlapped";
  const auto report = server.measured_queue_report();
  // 8 x 30 ms serially = 240 ms; four workers should land well under that.
  EXPECT_LT(report.makespan_h, 200.0);
}

// --- Stress: >= 4x capacity, mixed outcomes, TSan-clean -------------------

TEST(JobServerStressTest, FourTimesCapacityMixedJobsAllReachTerminalStates) {
  JobServer::Options opt;
  opt.capacity = 4;
  opt.seed = 42;
  JobServer server(opt);
  constexpr int kJobs = 32;  // 8x capacity

  std::vector<JobId> ids;
  std::vector<JobId> cancel_targets;
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec;
    const auto tier = static_cast<LearnerTier>(i % 3);
    switch (i % 4) {
      case 0:
        spec = sleep_job("ok" + std::to_string(i), 3.0, tier,
                         static_cast<std::size_t>(i % 5));
        break;
      case 1: {
        spec.name = "flaky" + std::to_string(i);
        spec.tier = tier;
        spec.member = static_cast<std::size_t>(i % 5);
        spec.max_attempts = 3;
        spec.backoff_base_ms = 1.0;
        spec.backoff_cap_ms = 2.0;
        spec.work = [](JobContext& ctx) -> util::Status {
          if (ctx.attempt < 2) {
            return util::Status::ResourceExhausted("transient");
          }
          return util::Status::Ok();
        };
        break;
      }
      case 2: {
        spec = sleep_job("deadline" + std::to_string(i), 50.0, tier,
                         static_cast<std::size_t>(i % 5));
        spec.deadline_ms = 10.0;
        break;
      }
      case 3:
        spec = sleep_job("cancel" + std::to_string(i), 40.0, tier,
                         static_cast<std::size_t>(i % 5));
        break;
    }
    const auto id = server.submit(std::move(spec));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    if (i % 4 == 3) cancel_targets.push_back(*id);
  }
  // Cancel the designated jobs from a separate thread while work is live.
  std::thread canceller([&server, &cancel_targets] {
    for (const JobId id : cancel_targets) (void)server.cancel(id);
  });
  canceller.join();

  const auto records = server.drain();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kJobs));
  int succeeded = 0, failed = 0, cancelled = 0, timed_out = 0;
  for (const auto& rec : records) {
    ASSERT_TRUE(is_terminal(rec.state)) << to_string(rec.state);
    switch (rec.state) {
      case JobState::kSucceeded: ++succeeded; break;
      case JobState::kFailed: ++failed; break;
      case JobState::kCancelled: ++cancelled; break;
      case JobState::kTimedOut: ++timed_out; break;
      default: break;
    }
  }
  EXPECT_EQ(succeeded + failed + cancelled + timed_out, kJobs);
  EXPECT_EQ(failed, 0);
  EXPECT_GE(succeeded, kJobs / 2);
  EXPECT_GT(timed_out, 0);
  const auto& metrics = server.metrics();
  EXPECT_EQ(metrics.counter("jobs_submitted"),
            static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(metrics.counter("jobs_succeeded") + metrics.counter("jobs_failed") +
                metrics.counter("jobs_cancelled") +
                metrics.counter("jobs_timed_out"),
            static_cast<std::uint64_t>(kJobs));
}

// --- Simulated vs measured bridge ----------------------------------------

TEST(QueueReportBridgeTest, SummarizeOutcomesMatchesSimulateQueue) {
  core::EnablementHub::Options opt;
  opt.job_capacity = 2;
  core::EnablementHub hub(pdk::standard_registry(), opt);
  std::vector<core::EnablementHub::Job> jobs = {
      {0, 0.0, 2.0}, {1, 0.0, 2.0}, {2, 1.0, 1.0}};
  const auto rep = hub.simulate_queue(jobs);
  // Re-summarizing the simulated outcomes reproduces the same report —
  // the shared arithmetic the measured path uses.
  const auto resum = core::EnablementHub::summarize_outcomes(
      jobs, rep.outcomes, opt.job_capacity);
  EXPECT_DOUBLE_EQ(resum.mean_wait_h, rep.mean_wait_h);
  EXPECT_DOUBLE_EQ(resum.max_wait_h, rep.max_wait_h);
  EXPECT_DOUBLE_EQ(resum.makespan_h, rep.makespan_h);
  EXPECT_DOUBLE_EQ(resum.utilization, rep.utilization);
}

}  // namespace
}  // namespace eurochip::hub
