#include <gtest/gtest.h>

#include "eurochip/netlist/simulator.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/rtl/simulator.hpp"
#include "eurochip/synth/aig.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::synth {
namespace {

using netlist::CellFn;

// --- AIG -------------------------------------------------------------------

TEST(AigTest, ConstantFolding) {
  Aig aig;
  const Lit a = aig.add_input("a");
  EXPECT_EQ(aig.and_(a, kLitFalse), kLitFalse);
  EXPECT_EQ(aig.and_(a, kLitTrue), a);
  EXPECT_EQ(aig.and_(a, a), a);
  EXPECT_EQ(aig.and_(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(aig.num_ands(), 0u);
}

TEST(AigTest, StructuralHashingFoldsDuplicates) {
  Aig aig;
  const Lit a = aig.add_input("a");
  const Lit b = aig.add_input("b");
  const Lit x = aig.and_(a, b);
  const Lit y = aig.and_(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(aig.num_ands(), 1u);
}

TEST(AigTest, XorAndMuxSemantics) {
  Aig aig;
  const Lit a = aig.add_input("a");
  const Lit b = aig.add_input("b");
  const Lit s = aig.add_input("s");
  aig.add_output("xor", aig.xor_(a, b));
  aig.add_output("mux", aig.mux(s, a, b));
  for (unsigned m = 0; m < 8; ++m) {
    const std::uint64_t wa = (m & 1) != 0 ? ~0uLL : 0;
    const std::uint64_t wb = (m & 2) != 0 ? ~0uLL : 0;
    const std::uint64_t ws = (m & 4) != 0 ? ~0uLL : 0;
    const auto words = aig.simulate({wa, wb, ws}, {});
    const auto out = aig.output_words(words);
    EXPECT_EQ(out[0], wa ^ wb);
    EXPECT_EQ(out[1], (ws & wa) | (~ws & wb));
  }
}

TEST(AigTest, LatchStateAdvances) {
  Aig aig;
  const Lit q = aig.add_latch("q");
  aig.set_latch_next(q, lit_not(q));  // toggle
  aig.add_output("q", q);
  std::vector<std::uint64_t> state = {0};
  for (int i = 0; i < 4; ++i) {
    const auto words = aig.simulate({}, state);
    const auto out = aig.output_words(words);
    EXPECT_EQ(out[0], i % 2 == 0 ? 0uLL : ~0uLL);
    state = aig.latch_next_words(words);
  }
}

TEST(AigTest, CheckPassesOnElaboratedDesigns) {
  for (auto& e : rtl::designs::standard_catalog()) {
    const auto aig = elaborate(e.module);
    ASSERT_TRUE(aig.ok()) << e.name;
    EXPECT_TRUE(aig->check().ok()) << e.name;
    // Pure-wiring designs (shift registers) legitimately have zero ANDs.
    EXPECT_GT(aig->num_ands() + aig->latches().size(), 0u) << e.name;
  }
}

// --- elaboration vs RTL simulation ----------------------------------------

/// Steps the RTL simulator and the AIG in lockstep with random stimulus.
void expect_aig_matches_rtl(const rtl::Module& m, const Aig& aig,
                            std::uint64_t seed, int cycles) {
  auto rtl_sim = rtl::Simulator::create(m);
  ASSERT_TRUE(rtl_sim.ok());
  rtl_sim->reset();

  // Map AIG latch state bits.
  std::vector<std::uint64_t> state(aig.latches().size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    state[i] = aig.latch_init(aig.latches()[i]) ? 1 : 0;
  }
  util::Rng rng(seed);

  const auto in_ids = m.inputs();
  const auto out_ids = m.outputs();
  for (int c = 0; c < cycles; ++c) {
    std::vector<std::uint64_t> word_in(in_ids.size());
    std::vector<std::uint64_t> bit_in;
    for (std::size_t i = 0; i < in_ids.size(); ++i) {
      const int w = m.signal(in_ids[i]).width;
      word_in[i] = rng.next() & (w >= 64 ? ~0uLL : (1uLL << w) - 1);
      for (int b = 0; b < w; ++b) {
        bit_in.push_back((word_in[i] >> b) & 1);
      }
    }
    const auto rtl_out = rtl_sim->step(word_in);
    const auto words = aig.simulate(bit_in, state);
    const auto aig_out_bits = aig.output_words(words);
    // Repack AIG output bits into words by output declaration order.
    std::size_t bit_idx = 0;
    for (std::size_t o = 0; o < out_ids.size(); ++o) {
      const int w = m.signal(out_ids[o]).width;
      std::uint64_t v = 0;
      for (int b = 0; b < w; ++b) {
        v |= (aig_out_bits[bit_idx++] & 1uLL) << b;
      }
      ASSERT_EQ(v, rtl_out[o]) << "output " << o << " cycle " << c;
    }
    state = aig.latch_next_words(words);
    for (auto& s : state) s &= 1;
  }
}

class ElaborateCatalogTest : public ::testing::TestWithParam<int> {};

TEST_P(ElaborateCatalogTest, AigMatchesRtlSimulation) {
  auto catalog = rtl::designs::standard_catalog();
  auto& entry = catalog[static_cast<std::size_t>(GetParam())];
  const auto aig = elaborate(entry.module);
  ASSERT_TRUE(aig.ok()) << entry.name;
  expect_aig_matches_rtl(entry.module, *aig, 42 + GetParam(), 50);
}

INSTANTIATE_TEST_SUITE_P(Catalog, ElaborateCatalogTest,
                         ::testing::Range(0, 16));

// --- optimization ----------------------------------------------------------

class OptimizePreservesTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizePreservesTest, OptimizedAigEquivalent) {
  auto catalog = rtl::designs::standard_catalog();
  auto& entry = catalog[static_cast<std::size_t>(GetParam())];
  const auto aig = elaborate(entry.module);
  ASSERT_TRUE(aig.ok());
  OptStats stats;
  const Aig opt = optimize(*aig, 4, &stats);
  EXPECT_TRUE(opt.check().ok());
  // Optimization may trade a few duplicated ANDs for depth, but never
  // regress both axes at once.
  EXPECT_LE(static_cast<double>(stats.final_ands) + 3.0 * stats.final_depth,
            static_cast<double>(stats.initial_ands) +
                3.0 * stats.initial_depth)
      << entry.name;
  util::Rng rng(7);
  EXPECT_TRUE(random_equivalent(*aig, opt, rng)) << entry.name;
}

INSTANTIATE_TEST_SUITE_P(Catalog, OptimizePreservesTest,
                         ::testing::Range(0, 16));

TEST(OptimizeTest, SweepRemovesDeadLogic) {
  Aig aig;
  const Lit a = aig.add_input("a");
  const Lit b = aig.add_input("b");
  (void)aig.and_(a, b);                  // dead
  aig.add_output("y", aig.or_(a, b));    // live
  const Aig swept = sweep(aig);
  EXPECT_LT(swept.num_ands(), aig.num_ands() + 1);
  util::Rng rng(1);
  EXPECT_TRUE(random_equivalent(aig, swept, rng));
}

TEST(OptimizeTest, BalanceReducesDepthOfChain) {
  Aig aig;
  std::vector<Lit> ins;
  for (int i = 0; i < 16; ++i) {
    ins.push_back(aig.add_input("i" + std::to_string(i)));
  }
  Lit acc = ins[0];
  for (int i = 1; i < 16; ++i) acc = aig.and_(acc, ins[i]);
  aig.add_output("y", acc);
  EXPECT_EQ(aig.max_level(), 15u);
  const Aig bal = balance(aig);
  EXPECT_LE(bal.max_level(), 5u);  // ceil(log2 16) = 4 (+ slack)
  util::Rng rng(2);
  EXPECT_TRUE(random_equivalent(aig, bal, rng));
}

TEST(OptimizeTest, RewriteAppliesAbsorption) {
  Aig aig;
  const Lit a = aig.add_input("a");
  const Lit b = aig.add_input("b");
  const Lit ab = aig.and_(a, b);
  aig.add_output("y", aig.and_(a, ab));  // = a & b
  const Aig rw = rewrite(aig);
  EXPECT_EQ(rw.num_ands(), 1u);
  util::Rng rng(3);
  EXPECT_TRUE(random_equivalent(aig, rw, rng));
}

// --- mapping ----------------------------------------------------------------

netlist::CellLibrary sky_lib() {
  return pdk::build_library(pdk::standard_node("sky130ish").value());
}

/// Lockstep-compares the RTL golden model with the mapped netlist.
void expect_netlist_matches_rtl(const rtl::Module& m,
                                const netlist::Netlist& nl,
                                std::uint64_t seed, int cycles) {
  auto rtl_sim = rtl::Simulator::create(m);
  ASSERT_TRUE(rtl_sim.ok());
  rtl_sim->reset();
  auto nl_sim = netlist::Simulator::create(nl);
  ASSERT_TRUE(nl_sim.ok());
  nl_sim->reset();

  util::Rng rng(seed);
  const auto in_ids = m.inputs();
  const auto out_ids = m.outputs();
  for (int c = 0; c < cycles; ++c) {
    std::vector<std::uint64_t> word_in(in_ids.size());
    std::vector<bool> bit_in;
    for (std::size_t i = 0; i < in_ids.size(); ++i) {
      const int w = m.signal(in_ids[i]).width;
      word_in[i] = rng.next() & (w >= 64 ? ~0uLL : (1uLL << w) - 1);
      for (int b = 0; b < w; ++b) bit_in.push_back(((word_in[i] >> b) & 1) != 0);
    }
    const auto rtl_out = rtl_sim->step(word_in);
    const auto nl_out = nl_sim->step(bit_in);
    std::size_t bit_idx = 0;
    for (std::size_t o = 0; o < out_ids.size(); ++o) {
      const int w = m.signal(out_ids[o]).width;
      std::uint64_t v = 0;
      for (int b = 0; b < w; ++b) {
        v |= (nl_out[bit_idx++] ? 1uLL : 0uLL) << b;
      }
      ASSERT_EQ(v, rtl_out[o]) << "output " << o << " cycle " << c;
    }
  }
}

class MapCatalogTest : public ::testing::TestWithParam<int> {};

TEST_P(MapCatalogTest, MappedNetlistEquivalentToRtl) {
  auto catalog = rtl::designs::standard_catalog();
  auto& entry = catalog[static_cast<std::size_t>(GetParam())];
  const auto aig = elaborate(entry.module);
  ASSERT_TRUE(aig.ok());
  const Aig opt = optimize(*aig, 2);
  const auto lib = sky_lib();
  MapStats stats;
  const auto nl = map_to_library(opt, lib, {}, &stats);
  ASSERT_TRUE(nl.ok()) << entry.name << ": " << nl.status().to_string();
  EXPECT_TRUE(nl->check().ok());
  EXPECT_GT(stats.mapped_cells, 0u);
  expect_netlist_matches_rtl(entry.module, *nl, 1000 + GetParam(), 40);
}

INSTANTIATE_TEST_SUITE_P(Catalog, MapCatalogTest, ::testing::Range(0, 16));

TEST(MapperTest, ComplexCellsReduceCellCount) {
  const auto m = rtl::designs::alu(12);
  const auto aig = elaborate(m);
  ASSERT_TRUE(aig.ok());
  const Aig opt = optimize(*aig, 2);
  const auto lib = sky_lib();
  MapOptions basic;
  basic.use_complex_cells = false;
  MapOptions rich;
  rich.use_complex_cells = true;
  MapStats s_basic;
  MapStats s_rich;
  ASSERT_TRUE(map_to_library(opt, lib, basic, &s_basic).ok());
  ASSERT_TRUE(map_to_library(opt, lib, rich, &s_rich).ok());
  EXPECT_LT(s_rich.area_um2, s_basic.area_um2);
  EXPECT_GT(s_rich.complex_cells_used, 0u);
}

TEST(MapperTest, InitOneLatchFoldsPolarity) {
  // LFSR has reset value 1; mapped netlist must still match RTL.
  const auto m = rtl::designs::lfsr(8);
  const auto aig = elaborate(m);
  ASSERT_TRUE(aig.ok());
  const auto lib = sky_lib();
  const auto nl = map_to_library(optimize(*aig, 2), lib);
  ASSERT_TRUE(nl.ok());
  expect_netlist_matches_rtl(m, *nl, 77, 60);
}

TEST(MapperTest, DelayObjectiveReducesDepth) {
  const auto m = rtl::designs::adder(24);
  const auto aig = elaborate(m);
  ASSERT_TRUE(aig.ok());
  const Aig opt = optimize(*aig, 2);
  const auto lib = sky_lib();
  MapOptions area_opt;
  area_opt.objective = MapObjective::kArea;
  MapOptions delay_opt;
  delay_opt.objective = MapObjective::kDelay;
  const auto nl_area = map_to_library(opt, lib, area_opt);
  const auto nl_delay = map_to_library(opt, lib, delay_opt);
  ASSERT_TRUE(nl_area.ok());
  ASSERT_TRUE(nl_delay.ok());
  EXPECT_LE(nl_delay->logic_depth(), nl_area->logic_depth() + 2);
}

TEST(MapperTest, SizingRespectsMaxLoad) {
  const auto m = rtl::designs::mini_cpu_datapath(8);
  const auto aig = elaborate(m);
  ASSERT_TRUE(aig.ok());
  const auto lib = sky_lib();
  MapOptions opt;
  opt.size_for_load = true;
  const auto nl = map_to_library(optimize(*aig, 2), lib, opt);
  ASSERT_TRUE(nl.ok());
  // After sizing, no driver may exceed its max load unless even the
  // strongest drive cannot carry it.
  for (netlist::CellId id : nl->all_cells()) {
    const auto& lc = nl->lib_cell(id);
    double load = 0.0;
    for (const auto& sink : nl->net(nl->cell(id).output).sinks) {
      load += nl->lib_cell(sink.cell).input_cap_ff;
    }
    const auto strongest = lib.strongest_for(lc.fn);
    if (strongest && lib.cell(*strongest).max_load_ff >= load) {
      EXPECT_LE(load, lc.max_load_ff * 1.0001) << lc.name;
    }
  }
  expect_netlist_matches_rtl(m, *nl, 5, 30);
}

TEST(MapperTest, StatsAreFilled) {
  const auto m = rtl::designs::counter(8);
  const auto aig = elaborate(m);
  ASSERT_TRUE(aig.ok());
  const auto lib = sky_lib();
  MapStats stats;
  ASSERT_TRUE(map_to_library(*aig, lib, {}, &stats).ok());
  EXPECT_EQ(stats.aig_ands, aig->num_ands());
  EXPECT_GT(stats.mapped_cells, 0u);
  EXPECT_GT(stats.area_um2, 0.0);
}

}  // namespace
}  // namespace eurochip::synth
