#include <gtest/gtest.h>

#include "eurochip/netlist/simulator.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/rtl/simulator.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/netopt.hpp"
#include "eurochip/synth/opt.hpp"
#include "eurochip/timing/sta.hpp"

namespace eurochip::synth {
namespace {

struct Mapped {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
};

Mapped map_design(const rtl::Module& m) {
  Mapped d;
  d.node = pdk::standard_node("sky130ish").value();
  d.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(d.node));
  const auto aig = elaborate(m);
  auto mapped = map_to_library(optimize(*aig, 2), *d.lib);
  d.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  return d;
}

std::size_t max_fanout_of(const netlist::Netlist& nl) {
  std::size_t worst = 0;
  for (netlist::NetId id : nl.all_nets()) {
    worst = std::max(worst, nl.net(id).sinks.size());
  }
  return worst;
}

TEST(NetoptTest, BoundsAllFanouts) {
  // mini_cpu has high-fanout select/result nets.
  const auto m = rtl::designs::mini_cpu_datapath(8);
  Mapped d = map_design(m);
  ASSERT_GT(max_fanout_of(*d.nl), 6u);  // there is something to fix
  BufferStats stats;
  ASSERT_TRUE(insert_buffers(*d.nl, *d.lib, 6, &stats).ok());
  EXPECT_LE(max_fanout_of(*d.nl), 6u);
  EXPECT_LE(stats.max_fanout_after, 6u);
  EXPECT_GT(stats.buffers_inserted, 0u);
  EXPECT_GT(stats.max_fanout_before, stats.max_fanout_after);
  EXPECT_TRUE(d.nl->check().ok());
}

TEST(NetoptTest, PreservesFunction) {
  const auto m = rtl::designs::alu(8);
  Mapped d = map_design(m);
  ASSERT_TRUE(insert_buffers(*d.nl, *d.lib, 4).ok());

  auto rtl_sim = rtl::Simulator::create(m);
  auto nl_sim = netlist::Simulator::create(*d.nl);
  ASSERT_TRUE(rtl_sim.ok());
  ASSERT_TRUE(nl_sim.ok());
  rtl_sim->reset();
  nl_sim->reset();
  util::Rng rng(17);
  for (int c = 0; c < 30; ++c) {
    const std::uint64_t a = rng.next() & 0xFF;
    const std::uint64_t b = rng.next() & 0xFF;
    const std::uint64_t op = rng.index(6);
    const auto ref = rtl_sim->step({a, b, op});
    std::vector<bool> bits;
    for (int i = 0; i < 8; ++i) bits.push_back(((a >> i) & 1) != 0);
    for (int i = 0; i < 8; ++i) bits.push_back(((b >> i) & 1) != 0);
    for (int i = 0; i < 3; ++i) bits.push_back(((op >> i) & 1) != 0);
    const auto out = nl_sim->step(bits);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= (out[static_cast<std::size_t>(i)] ? 1uLL : 0uLL) << i;
    ASSERT_EQ(v, ref[0]) << "cycle " << c;
  }
}

TEST(NetoptTest, NoChangeWhenAlreadyBounded) {
  const auto m = rtl::designs::counter(4);
  Mapped d = map_design(m);
  BufferStats stats;
  ASSERT_TRUE(insert_buffers(*d.nl, *d.lib, 64, &stats).ok());
  EXPECT_EQ(stats.buffers_inserted, 0u);
  EXPECT_EQ(stats.nets_rebuffered, 0u);
}

TEST(NetoptTest, RecursiveBufferingForHugeFanout) {
  // Build a net with fanout 64 and bound at 4: needs two buffer levels.
  const auto node = pdk::standard_node("sky130ish").value();
  auto lib = pdk::build_library(node);
  netlist::Netlist nl(&lib, "fanout_bomb");
  const auto a = nl.add_input("a");
  const auto inv = static_cast<std::uint32_t>(lib.find("INV_X1").value());
  std::vector<netlist::NetId> leaves;
  for (int i = 0; i < 64; ++i) {
    const auto cell = nl.add_cell("s" + std::to_string(i), inv, {a});
    leaves.push_back(nl.cell(cell.value()).output);
  }
  for (int i = 0; i < 64; ++i) {
    nl.add_output("o" + std::to_string(i), leaves[static_cast<std::size_t>(i)]);
  }
  BufferStats stats;
  ASSERT_TRUE(insert_buffers(nl, lib, 4, &stats).ok());
  EXPECT_LE(max_fanout_of(nl), 4u);
  EXPECT_GE(stats.buffers_inserted, 16u + 4u);  // two levels at least
  EXPECT_TRUE(nl.check().ok());
}

TEST(NetoptTest, ImprovesWorstSlackOnFanoutBomb) {
  const auto m = rtl::designs::mini_cpu_datapath(12);
  Mapped before = map_design(m);
  Mapped after = map_design(m);
  ASSERT_TRUE(insert_buffers(*after.nl, *after.lib, 8).ok());
  const auto t_before = timing::analyze(*before.nl, before.node);
  const auto t_after = timing::analyze(*after.nl, after.node);
  ASSERT_TRUE(t_before.ok());
  ASSERT_TRUE(t_after.ok());
  // Bounded loads must not make the design dramatically slower; typically
  // they help. Allow a small tolerance for the added buffer delay.
  EXPECT_GT(t_after->fmax_mhz, 0.8 * t_before->fmax_mhz);
}

TEST(NetoptTest, ValidatesArguments) {
  const auto m = rtl::designs::counter(4);
  Mapped d = map_design(m);
  EXPECT_FALSE(insert_buffers(*d.nl, *d.lib, 1).ok());
}

}  // namespace
}  // namespace eurochip::synth
