#include <gtest/gtest.h>

#include <cmath>

#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/power/power.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::power {
namespace {

struct Mapped {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
};

Mapped make_mapped(const rtl::Module& m,
                   const std::string& node_name = "sky130ish") {
  Mapped d;
  d.node = pdk::standard_node(node_name).value();
  d.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(d.node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *d.lib);
  d.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  return d;
}

TEST(PowerTest, ReportsPositiveComponents) {
  const auto m = rtl::designs::alu(8);
  const Mapped d = make_mapped(m);
  const auto report = estimate(*d.nl, d.node);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(report->dynamic_uw, 0.0);
  EXPECT_GT(report->leakage_uw, 0.0);
  EXPECT_GT(report->clock_tree_uw, 0.0);
  EXPECT_NEAR(report->total_uw,
              report->dynamic_uw + report->leakage_uw + report->clock_tree_uw,
              1e-9);
  EXPECT_GT(report->nets_analyzed, 0u);
}

TEST(PowerTest, DynamicPowerScalesWithFrequency) {
  const auto m = rtl::designs::counter(16);
  const Mapped d = make_mapped(m);
  PowerOptions slow;
  slow.clock_mhz = 50.0;
  PowerOptions fast;
  fast.clock_mhz = 500.0;
  const auto rs = estimate(*d.nl, d.node, slow);
  const auto rf = estimate(*d.nl, d.node, fast);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rf.ok());
  EXPECT_NEAR(rf->dynamic_uw / rs->dynamic_uw, 10.0, 0.01);
  EXPECT_NEAR(rf->leakage_uw, rs->leakage_uw, 1e-9);  // frequency-independent
}

TEST(PowerTest, SimulatedActivityDiffersFromDefault) {
  const auto m = rtl::designs::lfsr(12);
  const Mapped d = make_mapped(m);
  PowerOptions with_sim;
  with_sim.simulate_activity = true;
  PowerOptions without_sim;
  without_sim.simulate_activity = false;
  const auto a = estimate(*d.nl, d.node, with_sim);
  const auto b = estimate(*d.nl, d.node, without_sim);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(std::abs(a->average_activity - b->average_activity), 1e-6);
  EXPECT_NEAR(b->average_activity, without_sim.default_activity, 1e-9);
}

TEST(PowerTest, LeakageDominatesAtAdvancedNodesWhenIdle) {
  // The same design at 7nm leaks far more per gate than at 180nm
  // (paper-consistent scaling behaviour).
  const auto m = rtl::designs::alu(8);
  const Mapped d180 = make_mapped(m, "gf180ish");
  const Mapped d7 = make_mapped(m, "commercial7");
  const auto r180 = estimate(*d180.nl, d180.node);
  const auto r7 = estimate(*d7.nl, d7.node);
  ASSERT_TRUE(r180.ok());
  ASSERT_TRUE(r7.ok());
  const double frac180 = r180->leakage_uw / r180->total_uw;
  const double frac7 = r7->leakage_uw / r7->total_uw;
  EXPECT_GT(frac7, frac180);
}

TEST(PowerTest, DeterministicForSeed) {
  const auto m = rtl::designs::fir_filter(8, 3);
  const Mapped d = make_mapped(m);
  const auto a = estimate(*d.nl, d.node);
  const auto b = estimate(*d.nl, d.node);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->total_uw, b->total_uw);
}

TEST(PowerTest, MoreCyclesStillBounded) {
  const auto m = rtl::designs::counter(8);
  const Mapped d = make_mapped(m);
  PowerOptions opt;
  opt.activity_cycles = 1024;
  const auto report = estimate(*d.nl, d.node, opt);
  ASSERT_TRUE(report.ok());
  // Toggle rate can never exceed 1 per cycle per net.
  EXPECT_LE(report->average_activity, 1.0);
  EXPECT_GE(report->average_activity, 0.0);
}

}  // namespace
}  // namespace eurochip::power
