// FlowCache: content-addressed keying, invalidation, LRU eviction, and
// concurrent sharing across flow runs and JobServer workers.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "eurochip/flow/cache.hpp"
#include "eurochip/flow/fingerprint.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/hub/job.hpp"
#include "eurochip/hub/server.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/digest.hpp"

namespace eurochip {
namespace {

flow::FlowConfig base_config() {
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.quality = flow::FlowQuality::kOpen;
  cfg.seed = 7;
  return cfg;
}

// --- digest layer -------------------------------------------------------

TEST(DigestTest, HasherIsDeterministic) {
  util::Hasher a, b;
  a.str("hello").u64(42).f64(1.5).boolean(true);
  b.str("hello").u64(42).f64(1.5).boolean(true);
  EXPECT_EQ(a.finalize().hex(), b.finalize().hex());
}

TEST(DigestTest, DifferentInputsDiffer) {
  util::Hasher a, b, c;
  a.str("hello");
  b.str("hellp");
  c.str("hell").str("o");  // length-prefixing: concatenation != split
  const auto da = a.finalize(), db = b.finalize(), dc = c.finalize();
  EXPECT_NE(da, db);
  EXPECT_NE(da, dc);
}

TEST(DigestTest, CanonicalDoubles) {
  util::Hasher a, b;
  a.f64(0.0);
  b.f64(-0.0);
  EXPECT_EQ(a.finalize(), b.finalize());  // -0.0 canonicalized to +0.0
}

TEST(DigestTest, ModuleDigestIsContentBased) {
  const auto m1 = rtl::designs::counter(8);
  const auto m2 = rtl::designs::counter(8);
  const auto m3 = rtl::designs::counter(9);
  EXPECT_EQ(flow::digest_of(m1), flow::digest_of(m2));
  EXPECT_NE(flow::digest_of(m1), flow::digest_of(m3));
  EXPECT_NE(flow::digest_of(m1), flow::digest_of(rtl::designs::adder(8)));
}

TEST(DigestTest, NodeDigestDistinguishesNodes) {
  const auto a = pdk::standard_node("sky130ish").value();
  const auto b = pdk::standard_node("ihp130ish").value();
  EXPECT_EQ(flow::digest_of(a), flow::digest_of(a));
  EXPECT_NE(flow::digest_of(a), flow::digest_of(b));
}

// --- end-to-end keying through FlowTemplate::execute --------------------

TEST(FlowCacheTest, WarmRerunHitsEveryStep) {
  flow::FlowCache cache;
  const auto m = rtl::designs::counter(8);
  auto cfg = base_config();
  cfg.cache = &cache;

  const auto cold = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(cold.ok()) << cold.status().to_string();
  EXPECT_EQ(cold->cache_hits, 0u);
  EXPECT_EQ(cache.stats().stores, cold->steps.size());

  const auto warm = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_hits, warm->steps.size());
  for (const auto& s : warm->steps) EXPECT_TRUE(s.cached) << s.name;

  // Identical results, not just "a" result.
  EXPECT_EQ(warm->ppa.cell_count, cold->ppa.cell_count);
  EXPECT_DOUBLE_EQ(warm->ppa.area_um2, cold->ppa.area_um2);
  EXPECT_DOUBLE_EQ(warm->ppa.wns_ps, cold->ppa.wns_ps);
  EXPECT_DOUBLE_EQ(warm->ppa.power_uw, cold->ppa.power_uw);
  EXPECT_EQ(warm->ppa.wirelength_dbu, cold->ppa.wirelength_dbu);
  EXPECT_EQ(warm->ppa.gds_bytes, cold->ppa.gds_bytes);
  EXPECT_GE(cache.stats().hits, 1u);
}

TEST(FlowCacheTest, SeedChangeInvalidatesFromPlace) {
  flow::FlowCache cache;
  const auto m = rtl::designs::counter(8);
  auto cfg = base_config();
  cfg.cache = &cache;
  ASSERT_TRUE(flow::run_reference_flow(m, cfg).ok());

  cfg.seed = 8;  // only place's fingerprint includes the seed
  const auto r = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(r.ok());
  // library, elaborate, synth, map, dft are seed-independent.
  EXPECT_EQ(r->cache_hits, 5u);
}

TEST(FlowCacheTest, ClockChangeInvalidatesFromMap) {
  flow::FlowCache cache;
  const auto m = rtl::designs::counter(8);
  auto cfg = base_config();
  cfg.cache = &cache;
  ASSERT_TRUE(flow::run_reference_flow(m, cfg).ok());

  cfg.clock_period_ps = cfg.effective_clock_ps() * 2.0;
  const auto r = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(r.ok());
  // library, elaborate, synth survive; map keys on the effective clock.
  EXPECT_EQ(r->cache_hits, 3u);
}

TEST(FlowCacheTest, DesignOrNodeChangeMissesEntirely) {
  flow::FlowCache cache;
  auto cfg = base_config();
  cfg.cache = &cache;
  ASSERT_TRUE(flow::run_reference_flow(rtl::designs::counter(8), cfg).ok());

  const auto other = flow::run_reference_flow(rtl::designs::adder(8), cfg);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->cache_hits, 0u);

  auto cfg2 = cfg;
  cfg2.node = pdk::standard_node("ihp130ish").value();
  const auto r = flow::run_reference_flow(rtl::designs::counter(8), cfg2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cache_hits, 0u);
}

TEST(FlowCacheTest, QualityChangeMissesFromSynth) {
  flow::FlowCache cache;
  const auto m = rtl::designs::counter(8);
  auto cfg = base_config();
  cfg.cache = &cache;
  ASSERT_TRUE(flow::run_reference_flow(m, cfg).ok());

  cfg.quality = flow::FlowQuality::kCommercial;
  const auto r = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(r.ok());
  // Only library + elaborate are quality-independent.
  EXPECT_EQ(r->cache_hits, 2u);
}

TEST(FlowCacheTest, CustomStepBreaksKeyChain) {
  flow::FlowCache cache;
  const auto m = rtl::designs::counter(8);
  auto cfg = base_config();
  cfg.cache = &cache;

  auto t = flow::reference_template();
  ASSERT_TRUE(t.replace_step("synth", [](flow::FlowContext&) {
    return util::Status::Ok();
  }));
  ASSERT_TRUE(t.execute(m, cfg).ok());
  // Only steps upstream of the opaque step are keyable.
  EXPECT_EQ(cache.stats().stores, 2u);  // library, elaborate

  const auto warm = t.execute(m, cfg);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_hits, 2u);
}

TEST(FlowCacheTest, RestoredArtifactsAreRebasedDeepCopies) {
  flow::FlowCache cache;
  const auto m = rtl::designs::counter(8);
  auto cfg = base_config();
  cfg.cache = &cache;
  const auto cold = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(cold.ok());

  const auto warm = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(warm.ok());
  const auto& a = warm->artifacts;
  ASSERT_NE(a.mapped, nullptr);
  ASSERT_NE(a.placed, nullptr);
  ASSERT_NE(a.routed, nullptr);
  // No aliasing into the cold run's artifacts...
  EXPECT_NE(a.mapped.get(), cold->artifacts.mapped.get());
  EXPECT_NE(a.placed.get(), cold->artifacts.placed.get());
  // ...and internal cross-references point inside this copy.
  EXPECT_EQ(&a.mapped->library(), a.library.get());
  EXPECT_EQ(a.placed->netlist, a.mapped.get());
  EXPECT_EQ(a.routed->placed, a.placed.get());
}

// --- direct cache mechanics ---------------------------------------------

flow::FlowContext synthetic_ctx(std::size_t gds_kb) {
  flow::FlowContext ctx;
  ctx.artifacts.gds_bytes.assign(gds_kb * 1024, 0xAB);
  flow::StepRecord rec;
  rec.name = "gds";
  ctx.steps.push_back(rec);
  return ctx;
}

util::Digest key_of(std::uint64_t i) {
  util::Hasher h;
  h.str("test-key").u64(i);
  return h.finalize();
}

TEST(FlowCacheTest, LruEvictionRespectsByteBudget) {
  flow::FlowCache::Options opt;
  opt.max_bytes = 300 * 1024;  // fits ~3 x 64 KiB snapshots + overhead
  flow::FlowCache cache(opt);

  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto ctx = synthetic_ctx(64);
    cache.store(key_of(i), ctx);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.stores, 8u);
  EXPECT_GT(st.evictions, 0u);
  EXPECT_LE(st.bytes, opt.max_bytes);
  EXPECT_EQ(st.entries, st.stores - st.evictions);
  // Oldest keys evicted first, newest resident.
  EXPECT_FALSE(cache.contains(key_of(0)));
  EXPECT_TRUE(cache.contains(key_of(7)));
}

TEST(FlowCacheTest, LookupTouchesLruOrder) {
  flow::FlowCache::Options opt;
  opt.max_bytes = 300 * 1024;
  flow::FlowCache cache(opt);
  cache.store(key_of(1), synthetic_ctx(64));
  cache.store(key_of(2), synthetic_ctx(64));
  cache.store(key_of(3), synthetic_ctx(64));

  flow::FlowContext scratch;
  ASSERT_TRUE(cache.lookup(key_of(1), scratch));  // 1 becomes MRU

  cache.store(key_of(4), synthetic_ctx(64));
  cache.store(key_of(5), synthetic_ctx(64));
  EXPECT_TRUE(cache.contains(key_of(1)));   // touched, survived
  EXPECT_FALSE(cache.contains(key_of(2)));  // LRU victim
}

TEST(FlowCacheTest, OversizedSnapshotNotAdmitted) {
  flow::FlowCache::Options opt;
  opt.max_bytes = 16 * 1024;
  flow::FlowCache cache(opt);
  cache.store(key_of(1), synthetic_ctx(64));  // 64 KiB > 16 KiB budget
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.contains(key_of(1)));
}

TEST(FlowCacheTest, MissLeavesContextUntouched) {
  flow::FlowCache cache;
  flow::FlowContext ctx = synthetic_ctx(1);
  EXPECT_FALSE(cache.lookup(key_of(99), ctx));
  EXPECT_EQ(ctx.artifacts.gds_bytes.size(), 1024u);
  EXPECT_EQ(ctx.steps.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FlowCacheTest, ClearResetsResidency) {
  flow::FlowCache cache;
  cache.store(key_of(1), synthetic_ctx(4));
  ASSERT_TRUE(cache.contains(key_of(1)));
  cache.clear();
  EXPECT_FALSE(cache.contains(key_of(1)));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// --- concurrency (primary TSan target) ----------------------------------

TEST(FlowCacheTest, ConcurrentRunsShareOneCache) {
  flow::FlowCache cache;
  const auto m = rtl::designs::counter(6);
  auto cfg = base_config();
  cfg.cache = &cache;

  std::vector<std::thread> threads;
  std::vector<std::size_t> hits(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const auto r = flow::run_reference_flow(m, cfg);
      if (r.ok()) hits[static_cast<std::size_t>(t)] = r->cache_hits + 1;
    });
  }
  for (auto& th : threads) th.join();
  for (const auto h : hits) EXPECT_GT(h, 0u);  // all runs succeeded
  // At least one run must have seen another's stores (with a single
  // hardware thread the runs are effectively serialized, so all but the
  // first hit the full prefix; under real parallelism weaker but nonzero).
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(FlowCacheTest, ConcurrentStoreAndEvictionIsSafe) {
  flow::FlowCache::Options opt;
  opt.max_bytes = 200 * 1024;  // force constant eviction churn
  flow::FlowCache cache(opt);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 32; ++i) {
        const std::uint64_t k = static_cast<std::uint64_t>(t) * 100 + i;
        cache.store(key_of(k), synthetic_ctx(32));
        flow::FlowContext scratch;
        cache.lookup(key_of(k), scratch);
        (void)cache.contains(key_of(k % 7));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.stats().bytes, opt.max_bytes);
}

// --- hub integration ----------------------------------------------------

TEST(FlowCacheTest, JobServerRecordsCacheHitsAndMetrics) {
  flow::FlowCache cache;
  hub::JobServer::Options opt;
  opt.capacity = 2;
  opt.cache = &cache;
  hub::JobServer server(opt);

  auto design = std::make_shared<rtl::Module>(rtl::designs::counter(8));
  const auto cfg = base_config();

  const auto id1 = server.submit(hub::make_flow_job("cold", design, cfg));
  ASSERT_TRUE(id1.ok());
  const auto rec1 = server.wait(*id1);
  ASSERT_TRUE(rec1.ok());
  EXPECT_EQ(rec1->state, hub::JobState::kSucceeded);
  EXPECT_EQ(rec1->cache_hits, 0u);

  const auto id2 = server.submit(hub::make_flow_job("warm", design, cfg));
  ASSERT_TRUE(id2.ok());
  const auto rec2 = server.wait(*id2);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->state, hub::JobState::kSucceeded);
  EXPECT_EQ(rec2->cache_hits, rec2->steps.size());

  // Mirrored metrics: deltas synced after each job.
  EXPECT_GE(server.metrics().counter("flow_cache_hits"), 1u);
  EXPECT_GT(server.metrics().counter("flow_cache_stores"), 0u);
  EXPECT_GT(server.metrics().gauge("flow_cache_entries"), 0.0);
  server.shutdown();
}

TEST(FlowCacheTest, SetCacheRebaselinesTheMetricsMirror) {
  // Regression: a cache attached AFTER construction (set_cache) must be
  // re-baselined exactly like one attached at construction — a server
  // joining a warm shared cache must not claim the pre-existing totals
  // as its own activity.
  flow::FlowCache cache;
  auto design = std::make_shared<rtl::Module>(rtl::designs::counter(8));
  auto warm_cfg = base_config();
  warm_cfg.cache = &cache;
  ASSERT_TRUE(flow::run_reference_flow(*design, warm_cfg).ok());
  const auto warm = cache.stats();
  ASSERT_GT(warm.stores, 0u);

  hub::JobServer::Options opt;
  opt.capacity = 1;  // constructed WITHOUT a cache
  hub::JobServer server(opt);
  server.set_cache(&cache);

  const auto id = server.submit(hub::make_flow_job("warm", design,
                                                   base_config()));
  ASSERT_TRUE(id.ok());
  const auto rec = server.wait(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->state, hub::JobState::kSucceeded);
  EXPECT_EQ(rec->cache_hits, rec->steps.size()) << "cache must be attached";

  // The fully warm job stored nothing new: without re-baselining the
  // mirror would report the warm-up run's stores here.
  EXPECT_EQ(server.metrics().counter("flow_cache_stores"), 0u);
  EXPECT_GE(server.metrics().counter("flow_cache_hits"), 1u);

  // Detaching re-baselines too; later jobs run uncached.
  server.set_cache(nullptr);
  const auto id2 = server.submit(hub::make_flow_job("cold", design,
                                                    base_config()));
  ASSERT_TRUE(id2.ok());
  const auto rec2 = server.wait(*id2);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->state, hub::JobState::kSucceeded);
  EXPECT_EQ(rec2->cache_hits, 0u);
  server.shutdown();
}

}  // namespace
}  // namespace eurochip
