// Failure-injection and error-path tests: every layer must refuse bad
// input with the right ErrorCode instead of crashing or mis-reporting.
#include <gtest/gtest.h>

#include "eurochip/core/campaign.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/placer.hpp"
#include "eurochip/route/router.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/timing/sta.hpp"

namespace eurochip {
namespace {

TEST(FailureTest, EmptyNetlistCannotBeFloorplanned) {
  const auto node = pdk::standard_node("sky130ish").value();
  const auto lib = pdk::build_library(node);
  netlist::Netlist empty(&lib, "empty");
  const auto fp = place::Floorplan::create(empty, node, 0.6);
  EXPECT_FALSE(fp.ok());
  EXPECT_EQ(fp.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(FailureTest, MapperRequiresUsableLibrary) {
  // A library without inverters cannot cover complement edges.
  netlist::CellLibrary crippled("crippled", "none", 1000, 100);
  netlist::LibraryCell buf;
  buf.name = "BUF_X1";
  buf.fn = netlist::CellFn::kBuf;
  buf.width_dbu = 100;
  crippled.add_cell(buf);
  const auto aig = synth::elaborate(rtl::designs::adder(4));
  ASSERT_TRUE(aig.ok());
  const auto mapped = synth::map_to_library(*aig, crippled);
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(FailureTest, OverfullFloorplanReportsResourceExhausted) {
  // Request a floorplan at an impossible utilization for this node.
  const auto node = pdk::standard_node("sky130ish").value();
  const auto lib = pdk::build_library(node);
  const auto aig = synth::elaborate(rtl::designs::alu(8));
  const auto mapped = synth::map_to_library(*aig, lib);
  ASSERT_TRUE(mapped.ok());
  place::PlacementOptions opt;
  opt.target_utilization = 2.0;  // > max
  const auto placed = place::place(*mapped, node, opt);
  EXPECT_FALSE(placed.ok());
  EXPECT_EQ(placed.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(FailureTest, StaWithoutEndpointsFails) {
  const auto node = pdk::standard_node("sky130ish").value();
  const auto lib = pdk::build_library(node);
  netlist::Netlist nl(&lib, "no_endpoints");
  const auto a = nl.add_input("a");
  const auto inv = lib.find("INV_X1");
  ASSERT_TRUE(inv.ok());
  (void)nl.add_cell("g", static_cast<std::uint32_t>(*inv), {a});
  // No primary output, no DFF: nothing to time.
  const auto report = timing::analyze(nl, node);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::ErrorCode::kFailedPrecondition);
}

TEST(FailureTest, FlowStopsAtFirstFailingStep) {
  // A config with an impossible utilization fails in 'place'; later steps
  // must not run (their artifacts stay empty).
  const auto m = rtl::designs::counter(8);
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  place::PlacementOptions po;
  po.target_utilization = 2.0;
  cfg.place_options = po;
  const auto result = flow::run_reference_flow(m, cfg);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("place"), std::string::npos);
}

TEST(FailureTest, CampaignUnknownNode) {
  core::EnablementHub hub(pdk::standard_registry(), {});
  (void)hub.enable_technology("sky130ish");
  core::UniversityProfile uni;
  const std::size_t member = hub.add_member(uni);
  const auto design = rtl::designs::counter(4);
  core::CampaignConfig cfg;
  cfg.node_name = "tsmc3";  // not in the registry
  const auto report = core::run_campaign(hub, member, design, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::ErrorCode::kNotFound);
}

TEST(FailureTest, CampaignInvalidMember) {
  core::EnablementHub hub(pdk::standard_registry(), {});
  (void)hub.enable_technology("sky130ish");
  const auto design = rtl::designs::counter(4);
  core::CampaignConfig cfg;
  cfg.node_name = "sky130ish";
  const auto report = core::run_campaign(hub, /*member=*/99, design, cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(FailureTest, RouterReportsUnroutableDesign) {
  // Starve the router: tiny gcells, no negotiation, zero rip-up budget.
  const auto node = pdk::standard_node("sky130ish").value();
  const auto lib = pdk::build_library(node);
  const auto aig = synth::elaborate(rtl::designs::mini_cpu_datapath(16));
  const auto mapped = synth::map_to_library(*aig, lib);
  ASSERT_TRUE(mapped.ok());
  place::PlacementOptions po;
  po.target_utilization = 0.8;  // dense
  const auto placed = place::place(*mapped, node, po);
  ASSERT_TRUE(placed.ok());
  route::RouteOptions ro;
  ro.gcell_pitches = 4;
  ro.congestion_aware = false;
  ro.max_ripup_iterations = 0;
  const auto routed = route::route(*placed, node, ro);
  if (!routed.ok()) {
    EXPECT_EQ(routed.status().code(), util::ErrorCode::kResourceExhausted);
  } else {
    // If it squeaked through, the overflow must at least be visible.
    EXPECT_GE(routed->overflowed_edges, 0);
  }
}

TEST(FailureTest, HubRejectsDoubleEnableAndUnknownNode) {
  core::EnablementHub hub(pdk::standard_registry(), {});
  EXPECT_TRUE(hub.enable_technology("gf180ish").ok());
  EXPECT_EQ(hub.enable_technology("gf180ish").code(),
            util::ErrorCode::kAlreadyExists);
  EXPECT_EQ(hub.enable_technology("intel18A").code(),
            util::ErrorCode::kNotFound);
}

TEST(FailureTest, ResultThrowsOnMisuseOnly) {
  util::Result<int> bad = util::Status::NotFound("x");
  EXPECT_THROW((void)bad.value(), std::logic_error);
  util::Result<int> good = 3;
  EXPECT_NO_THROW((void)good.value());
}

}  // namespace
}  // namespace eurochip
