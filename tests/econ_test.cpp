#include <gtest/gtest.h>

#include "eurochip/econ/cost_model.hpp"
#include "eurochip/econ/value_chain.hpp"
#include "eurochip/pdk/registry.hpp"

namespace eurochip::econ {
namespace {

// --- value chain ------------------------------------------------------------

TEST(ValueChainTest, PaperBaselineMatchesCitedShares) {
  const auto model = ValueChainModel::paper_baseline();
  EXPECT_DOUBLE_EQ(model.find("design")->share_of_added_value, 0.30);
  EXPECT_DOUBLE_EQ(model.find("fabrication")->share_of_added_value, 0.34);
  EXPECT_DOUBLE_EQ(model.find("design")->eu_contribution, 0.10);
  EXPECT_DOUBLE_EQ(model.find("fabrication")->eu_contribution, 0.08);
  EXPECT_DOUBLE_EQ(model.find("equipment")->eu_contribution, 0.40);
  EXPECT_DOUBLE_EQ(model.find("materials")->eu_contribution, 0.20);
}

TEST(ValueChainTest, SharesSumToOne) {
  const auto model = ValueChainModel::paper_baseline();
  EXPECT_NEAR(model.total_share(), 1.0, 1e-9);
}

TEST(ValueChainTest, OverallEuShareIsWeightedAverage) {
  const auto model = ValueChainModel::paper_baseline();
  const double share = model.eu_overall_share();
  // Europe's overall chain share is low double digits.
  EXPECT_GT(share, 0.08);
  EXPECT_LT(share, 0.20);
}

TEST(ValueChainTest, ScenarioRaisesOverallShare) {
  const auto model = ValueChainModel::paper_baseline();
  const auto boosted = model.with_eu_contribution("design", 0.20);
  ASSERT_TRUE(boosted.ok());
  EXPECT_GT(boosted->eu_overall_share(), model.eu_overall_share());
  // Doubling design's contribution adds exactly 0.30 * 0.10.
  EXPECT_NEAR(boosted->eu_overall_share() - model.eu_overall_share(),
              0.30 * 0.10, 1e-12);
}

TEST(ValueChainTest, ScenarioValidation) {
  const auto model = ValueChainModel::paper_baseline();
  EXPECT_FALSE(model.with_eu_contribution("design", 1.5).ok());
  EXPECT_FALSE(model.with_eu_contribution("nonexistent", 0.5).ok());
}

TEST(ValueChainTest, AbsoluteValueScalesWithWorldMarket) {
  auto model = ValueChainModel::paper_baseline();
  const double v600 = model.eu_value_busd();
  model.set_world_value_busd(1200.0);
  EXPECT_NEAR(model.eu_value_busd(), 2.0 * v600, 1e-9);
}

TEST(ValueChainTest, ApplicationAreasIncludePaperClaim) {
  const auto areas = paper_application_areas();
  bool found = false;
  for (const auto& a : areas) {
    if (a.area == "industrial" || a.area == "automotive") {
      EXPECT_DOUBLE_EQ(a.eu_share, 0.55);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- design cost ------------------------------------------------------------

TEST(DesignCostTest, AnchorsReproduced) {
  const auto model = DesignCostModel::paper_baseline();
  EXPECT_NEAR(model.cost_musd(130), 5.0, 0.01);
  EXPECT_NEAR(model.cost_musd(2), 725.0, 1.0);
  EXPECT_NEAR(model.cost_musd(28), 51.0, 0.5);
  EXPECT_NEAR(model.cost_musd(7), 297.0, 3.0);
}

TEST(DesignCostTest, MonotoneDecreasingInFeature) {
  const auto model = DesignCostModel::paper_baseline();
  double prev = 1e18;
  for (double f : {2.0, 3.0, 5.0, 7.0, 16.0, 28.0, 65.0, 130.0, 180.0}) {
    const double c = model.cost_musd(f);
    EXPECT_LT(c, prev) << f;
    prev = c;
  }
}

TEST(DesignCostTest, PaperEndpointRatio) {
  // The paper's "145x from 130nm to 2nm" headline ratio.
  const auto model = DesignCostModel::paper_baseline();
  EXPECT_NEAR(model.cost_musd(2) / model.cost_musd(130), 145.0, 2.0);
}

TEST(DesignCostTest, InterpolationBetweenAnchors) {
  const auto model = DesignCostModel::paper_baseline();
  const double c16 = model.cost_musd(16);
  EXPECT_GT(c16, model.cost_musd(28));
  EXPECT_LT(c16, model.cost_musd(7));
}

TEST(DesignCostTest, BreakdownSumsToOne) {
  const auto model = DesignCostModel::paper_baseline();
  for (double f : {180.0, 65.0, 7.0, 2.0}) {
    const auto b = model.breakdown(f);
    const double total = b.architecture + b.rtl_design + b.verification +
                         b.physical + b.software + b.ip_licensing;
    EXPECT_NEAR(total, 1.0, 1e-9) << f;
    EXPECT_GT(b.rtl_design, 0.0) << f;
  }
}

TEST(DesignCostTest, VerificationShareGrowsTowardAdvancedNodes) {
  const auto model = DesignCostModel::paper_baseline();
  EXPECT_GT(model.breakdown(2).verification,
            model.breakdown(130).verification);
  EXPECT_GT(model.breakdown(2).software, model.breakdown(130).software);
}

TEST(DesignCostTest, RejectsBadInput) {
  EXPECT_THROW(DesignCostModel({{130.0, 5.0}}), std::invalid_argument);
  const auto model = DesignCostModel::paper_baseline();
  EXPECT_THROW((void)model.cost_musd(0.0), std::invalid_argument);
}

// --- MPW ---------------------------------------------------------------------

TEST(MpwTest, CostScalesWithAreaAndNode) {
  const MpwCostModel mpw;
  const auto n130 = pdk::standard_node("sky130ish").value();
  const auto n7 = pdk::standard_node("commercial7").value();
  const auto none = no_program();
  EXPECT_GT(mpw.slot_cost_keur(n130, 4.0, none),
            mpw.slot_cost_keur(n130, 2.0, none));
  EXPECT_GT(mpw.slot_cost_keur(n7, 2.0, none),
            mpw.slot_cost_keur(n130, 2.0, none));
}

TEST(MpwTest, MinimumSlotGranularity) {
  const MpwCostModel mpw;
  const auto node = pdk::standard_node("sky130ish").value();
  EXPECT_DOUBLE_EQ(mpw.slot_cost_keur(node, 0.2, no_program()),
                   mpw.slot_cost_keur(node, 1.0, no_program()));
}

TEST(MpwTest, ProgramsReduceCost) {
  const MpwCostModel mpw;
  const auto node = pdk::standard_node("commercial28").value();
  const double full = mpw.slot_cost_keur(node, 2.0, no_program());
  const double discounted = mpw.slot_cost_keur(node, 2.0, europractice_like());
  const double sponsored = mpw.slot_cost_keur(node, 2.0, sponsored_open_mpw());
  EXPECT_NEAR(discounted, full * 0.6, 1e-9);
  EXPECT_DOUBLE_EQ(sponsored, 0.0);  // Recommendation 6: fully covered
}

TEST(MpwTest, TurnaroundExceedsCourseLength) {
  // Paper claim: "turn-around times from design to packaged chips also
  // exceed typical course lengths".
  const MpwCostModel mpw;
  const AcademicDurations durations;
  for (const auto& node : pdk::standard_nodes()) {
    EXPECT_GT(mpw.turnaround_months(node), durations.course)
        << node.name;
  }
}

TEST(MpwTest, PhdProjectFitsAllNodes) {
  const MpwCostModel mpw;
  const AcademicDurations durations;
  for (const auto& node : pdk::standard_nodes()) {
    EXPECT_TRUE(mpw.fits_schedule(node, 6.0, durations.phd_project))
        << node.name;
  }
}

TEST(MpwTest, ThesisScheduleOnlyFitsNothing) {
  // 6-month thesis with 3 months of design: no node's shuttle returns
  // packaged parts in time (the paper's §III-C argument).
  const MpwCostModel mpw;
  const AcademicDurations durations;
  for (const auto& node : pdk::standard_nodes()) {
    EXPECT_FALSE(mpw.fits_schedule(node, 3.0, durations.msc_thesis))
        << node.name;
  }
}

}  // namespace
}  // namespace eurochip::econ
