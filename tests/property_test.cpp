// Cross-cutting property and fuzz tests.
//
// These generate random structures (AIGs, RTL expression trees, layouts)
// and assert end-to-end invariants: synthesis/mapping preserve semantics,
// the flow produces legal/clean/routable layouts for every catalog design
// on every open node, GDS round-trips arbitrary geometry, and Verilog
// emission stays parseable.
#include <gtest/gtest.h>

#include "eurochip/drc/checker.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/gds/gds.hpp"
#include "eurochip/netlist/simulator.hpp"
#include "eurochip/netlist/verilog.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/placer.hpp"
#include "eurochip/route/router.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/rtl/simulator.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"
#include "eurochip/util/rng.hpp"

namespace eurochip {
namespace {

// ---------------------------------------------------------------------------
// 1. Random-AIG fuzz: optimize + map preserve semantics.
// ---------------------------------------------------------------------------

/// Builds a random sequential AIG with `n_inputs` inputs, `n_latches`
/// latches and ~`n_ops` random gates.
synth::Aig random_aig(util::Rng& rng, int n_inputs, int n_latches,
                      int n_ops) {
  synth::Aig aig;
  std::vector<synth::Lit> pool;
  for (int i = 0; i < n_inputs; ++i) {
    pool.push_back(aig.add_input("i" + std::to_string(i)));
  }
  std::vector<synth::Lit> latches;
  for (int i = 0; i < n_latches; ++i) {
    latches.push_back(aig.add_latch("l" + std::to_string(i), rng.chance(0.3)));
    pool.push_back(latches.back());
  }
  for (int i = 0; i < n_ops; ++i) {
    synth::Lit a = pool[rng.index(pool.size())];
    synth::Lit b = pool[rng.index(pool.size())];
    if (rng.chance(0.5)) a = synth::lit_not(a);
    if (rng.chance(0.5)) b = synth::lit_not(b);
    synth::Lit out;
    switch (rng.index(3)) {
      case 0: out = aig.and_(a, b); break;
      case 1: out = aig.or_(a, b); break;
      default: out = aig.xor_(a, b); break;
    }
    pool.push_back(out);
  }
  for (std::size_t i = 0; i < latches.size(); ++i) {
    synth::Lit next = pool[rng.index(pool.size())];
    if (rng.chance(0.5)) next = synth::lit_not(next);
    aig.set_latch_next(latches[i], next);
  }
  const int n_outputs = 1 + static_cast<int>(rng.index(4));
  for (int i = 0; i < n_outputs; ++i) {
    synth::Lit o = pool[rng.index(pool.size())];
    if (rng.chance(0.5)) o = synth::lit_not(o);
    aig.add_output("o" + std::to_string(i), o);
  }
  return aig;
}

class AigFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AigFuzzTest, OptimizePreservesRandomAig) {
  util::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const synth::Aig aig = random_aig(rng, 5, 3, 40);
  ASSERT_TRUE(aig.check().ok());
  const synth::Aig opt = synth::optimize(aig, 3);
  util::Rng check_rng(99);
  EXPECT_TRUE(synth::random_equivalent(aig, opt, check_rng, 24, 6));
}

TEST_P(AigFuzzTest, MappedNetlistMatchesAigSimulation) {
  util::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const synth::Aig aig = random_aig(rng, 4, 2, 30);
  static const auto lib =
      pdk::build_library(pdk::standard_node("sky130ish").value());
  const auto mapped = synth::map_to_library(synth::optimize(aig, 2), lib);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  ASSERT_TRUE(mapped->check().ok());
  auto sim = netlist::Simulator::create(*mapped);
  ASSERT_TRUE(sim.ok());
  sim->reset();

  // Lockstep: single-bit serial comparison over 40 cycles.
  std::vector<std::uint64_t> state(aig.latches().size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    state[i] = aig.latch_init(aig.latches()[i]) ? 1 : 0;
  }
  util::Rng stim(7);
  for (int cycle = 0; cycle < 40; ++cycle) {
    std::vector<std::uint64_t> in_bits(aig.inputs().size());
    std::vector<bool> nl_in(aig.inputs().size());
    for (std::size_t i = 0; i < in_bits.size(); ++i) {
      in_bits[i] = stim.chance(0.5) ? 1 : 0;
      nl_in[i] = in_bits[i] != 0;
    }
    const auto words = aig.simulate(in_bits, state);
    const auto aig_out = aig.output_words(words);
    const auto nl_out = sim->step(nl_in);
    ASSERT_EQ(aig_out.size(), nl_out.size());
    for (std::size_t o = 0; o < nl_out.size(); ++o) {
      ASSERT_EQ((aig_out[o] & 1) != 0, nl_out[o])
          << "output " << o << " cycle " << cycle;
    }
    state = aig.latch_next_words(words);
    for (auto& s : state) s &= 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigFuzzTest, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// 2. Random-RTL fuzz: elaboration matches the RTL simulator.
// ---------------------------------------------------------------------------

/// Builds a random module mixing word-level operators and registers.
rtl::Module random_module(util::Rng& rng, int seed_tag) {
  rtl::Module m("fuzz" + std::to_string(seed_tag));
  std::vector<rtl::ExprId> pool;
  const int n_inputs = 2 + static_cast<int>(rng.index(3));
  for (int i = 0; i < n_inputs; ++i) {
    const int w = 1 + static_cast<int>(rng.index(12));
    pool.push_back(m.sig(m.input("in" + std::to_string(i), w)));
  }
  std::vector<rtl::SignalId> regs;
  const int n_regs = static_cast<int>(rng.index(3));
  for (int i = 0; i < n_regs; ++i) {
    const int w = 1 + static_cast<int>(rng.index(10));
    const auto r = m.reg("r" + std::to_string(i), w,
                         rng.next() & ((1uLL << w) - 1));
    regs.push_back(r);
    pool.push_back(m.sig(r));
  }
  const int n_ops = 10 + static_cast<int>(rng.index(20));
  for (int i = 0; i < n_ops; ++i) {
    const rtl::ExprId a = pool[rng.index(pool.size())];
    const rtl::ExprId b = pool[rng.index(pool.size())];
    const int wa = m.expr(a).width;
    rtl::ExprId e;
    switch (rng.index(10)) {
      case 0: e = m.add(a, m.resize(b, wa)); break;
      case 1: e = m.sub(a, m.resize(b, wa)); break;
      case 2: e = m.band(a, m.resize(b, wa)); break;
      case 3: e = m.bor(a, m.resize(b, wa)); break;
      case 4: e = m.bxor(a, m.resize(b, wa)); break;
      case 5: e = m.bnot(a); break;
      case 6: e = m.resize(m.lt(a, m.resize(b, wa)), wa); break;
      case 7:
        e = m.mux(m.red_or(b), a, m.resize(m.lit(0, 1), wa));
        break;
      case 8: {
        const int wm = std::min(6, wa);
        const auto am = m.resize(a, wm);
        const auto bm = m.resize(b, wm);
        e = m.mul(am, bm);
        break;
      }
      default:
        e = m.shl(a, static_cast<unsigned>(rng.index(static_cast<std::size_t>(wa))));
        break;
    }
    pool.push_back(e);
  }
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const int w = m.signal(regs[i]).width;
    m.set_next(regs[i], m.resize(pool[rng.index(pool.size())], w));
  }
  const int n_outputs = 1 + static_cast<int>(rng.index(3));
  for (int i = 0; i < n_outputs; ++i) {
    const rtl::ExprId e = pool[pool.size() - 1 - rng.index(pool.size() / 2)];
    m.output("out" + std::to_string(i), m.expr(e).width, e);
  }
  return m;
}

class RtlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RtlFuzzTest, ElaborationMatchesRtlSimulator) {
  util::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const rtl::Module m = random_module(rng, GetParam());
  ASSERT_TRUE(m.check().ok());
  const auto aig = synth::elaborate(m);
  ASSERT_TRUE(aig.ok()) << aig.status().to_string();

  auto rtl_sim = rtl::Simulator::create(m);
  ASSERT_TRUE(rtl_sim.ok());
  rtl_sim->reset();
  std::vector<std::uint64_t> state(aig->latches().size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    state[i] = aig->latch_init(aig->latches()[i]) ? 1 : 0;
  }
  const auto in_ids = m.inputs();
  const auto out_ids = m.outputs();
  util::Rng stim(31 + static_cast<std::uint64_t>(GetParam()));
  for (int cycle = 0; cycle < 30; ++cycle) {
    std::vector<std::uint64_t> word_in(in_ids.size());
    std::vector<std::uint64_t> bit_in;
    for (std::size_t i = 0; i < in_ids.size(); ++i) {
      const int w = m.signal(in_ids[i]).width;
      word_in[i] = stim.next() & (w >= 64 ? ~0uLL : (1uLL << w) - 1);
      for (int b = 0; b < w; ++b) bit_in.push_back((word_in[i] >> b) & 1);
    }
    const auto rtl_out = rtl_sim->step(word_in);
    const auto words = aig->simulate(bit_in, state);
    const auto aig_bits = aig->output_words(words);
    std::size_t bit = 0;
    for (std::size_t o = 0; o < out_ids.size(); ++o) {
      const int w = m.signal(out_ids[o]).width;
      std::uint64_t v = 0;
      for (int b = 0; b < w; ++b) v |= (aig_bits[bit++] & 1uLL) << b;
      ASSERT_EQ(v, rtl_out[o]) << "output " << o << " cycle " << cycle;
    }
    state = aig->latch_next_words(words);
    for (auto& s : state) s &= 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlFuzzTest, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// 3. Physical pipeline invariants over catalog x open nodes.
// ---------------------------------------------------------------------------

struct PhysicalCase {
  int design_index;
  const char* node_name;
};

class PhysicalPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(PhysicalPropertyTest, LegalCleanAndRoutable) {
  const auto [design_index, node_name] = GetParam();
  auto catalog = rtl::designs::standard_catalog();
  auto& entry = catalog[static_cast<std::size_t>(design_index)];
  const auto node = pdk::standard_node(node_name).value();
  const auto lib = pdk::build_library(node);
  const auto aig = synth::elaborate(entry.module);
  ASSERT_TRUE(aig.ok());
  const auto mapped = synth::map_to_library(synth::optimize(*aig, 1), lib);
  ASSERT_TRUE(mapped.ok());

  const auto placed = place::place(*mapped, node);
  ASSERT_TRUE(placed.ok()) << entry.name;
  EXPECT_TRUE(placed->is_legal()) << entry.name;

  const auto routed = route::route(*placed, node);
  ASSERT_TRUE(routed.ok()) << entry.name;

  const auto report = drc::check(*placed, node, &*routed);
  EXPECT_TRUE(report.clean())
      << entry.name << ": "
      << (report.violations.empty() ? "" : report.violations[0].detail);
}

INSTANTIATE_TEST_SUITE_P(
    CatalogXNodes, PhysicalPropertyTest,
    ::testing::Combine(::testing::Values(0, 2, 4, 8, 9),
                       ::testing::Values("gf180ish", "sky130ish",
                                         "ihp130ish")));

// ---------------------------------------------------------------------------
// 3b. Full-flow sweep: preset x node, end-to-end invariants.
// ---------------------------------------------------------------------------

class FlowSweepTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(FlowSweepTest, FlowInvariantsHoldEverywhere) {
  const auto [preset, node_name] = GetParam();
  const auto m = rtl::designs::alu(8);
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node(node_name).value();
  cfg.quality = preset == 0 ? flow::FlowQuality::kOpen
                            : flow::FlowQuality::kCommercial;
  const auto result = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(result.ok()) << node_name << ": "
                           << result.status().to_string();
  EXPECT_EQ(result->ppa.drc_violations, 0u);
  EXPECT_GT(result->ppa.fmax_mhz, 0.0);
  EXPECT_GT(result->ppa.power_uw, 0.0);
  EXPECT_TRUE(result->artifacts.placed->is_legal());
  EXPECT_TRUE(result->artifacts.timing.hold_met());
  // GDSII parses back and covers all cells.
  const auto parsed = gds::read(result->artifacts.gds_bytes);
  ASSERT_TRUE(parsed.ok());
  std::size_t cells = 0;
  for (const auto& b : parsed->structures[0].boundaries) {
    if (b.layer == gds::kLayerCells) ++cells;
  }
  EXPECT_EQ(cells, result->ppa.cell_count);
}

INSTANTIATE_TEST_SUITE_P(
    PresetsXNodes, FlowSweepTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values("gf180ish", "sky130ish",
                                         "commercial28", "commercial2")));

// ---------------------------------------------------------------------------
// 4. GDS geometry fuzz round-trip.
// ---------------------------------------------------------------------------

class GdsFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(GdsFuzzTest, RandomGeometryRoundTrips) {
  util::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  gds::Library lib;
  lib.name = "FUZZ" + std::to_string(GetParam());
  const int n_structs = 1 + static_cast<int>(rng.index(3));
  for (int s = 0; s < n_structs; ++s) {
    gds::Structure st;
    st.name = "S" + std::to_string(s);
    const int n_rects = static_cast<int>(rng.index(50));
    for (int r = 0; r < n_rects; ++r) {
      const std::int64_t x = rng.uniform_int(-1000000, 1000000);
      const std::int64_t y = rng.uniform_int(-1000000, 1000000);
      const std::int64_t w = rng.uniform_int(1, 100000);
      const std::int64_t h = rng.uniform_int(1, 100000);
      st.boundaries.push_back(gds::Boundary::from_rect(
          static_cast<std::int16_t>(rng.index(64)),
          util::Rect{x, y, x + w, y + h}));
    }
    lib.structures.push_back(std::move(st));
  }
  const auto bytes = gds::write(lib);
  const auto parsed = gds::read(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->structures.size(), lib.structures.size());
  for (std::size_t s = 0; s < lib.structures.size(); ++s) {
    ASSERT_EQ(parsed->structures[s].boundaries.size(),
              lib.structures[s].boundaries.size());
    for (std::size_t b = 0; b < lib.structures[s].boundaries.size(); ++b) {
      EXPECT_EQ(parsed->structures[s].boundaries[b].points,
                lib.structures[s].boundaries[b].points);
      EXPECT_EQ(parsed->structures[s].boundaries[b].layer,
                lib.structures[s].boundaries[b].layer);
    }
  }
  // Byte-exact idempotence.
  EXPECT_EQ(gds::write(*parsed), bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GdsFuzzTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// 5. Verilog emission stays parseable for random AIG-derived netlists.
// ---------------------------------------------------------------------------

class VerilogFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(VerilogFuzzTest, EmittedVerilogParses) {
  util::Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  const synth::Aig aig = random_aig(rng, 4, 2, 25);
  static const auto lib =
      pdk::build_library(pdk::standard_node("gf180ish").value());
  const auto mapped = synth::map_to_library(aig, lib);
  ASSERT_TRUE(mapped.ok());
  const auto summary =
      netlist::read_verilog_summary(netlist::write_verilog(*mapped));
  ASSERT_TRUE(summary.ok()) << summary.status().to_string();
  EXPECT_EQ(summary->num_instances, mapped->num_cells());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerilogFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace eurochip
