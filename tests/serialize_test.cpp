// Wire-format round trips for every flow artifact (flow/serialize.hpp):
// a deserialized artifact must be indistinguishable from the original —
// equal content digests where digest_of exists, byte-identical
// re-serialization everywhere — and corrupt/truncated streams must be
// rejected with a Status, never a crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "eurochip/flow/fingerprint.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/flow/serialize.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/wire.hpp"

namespace eurochip {
namespace {

// One reference-flow run on a sequential design (counter has flops, so
// every artifact — clock tree included — is populated), shared by all
// round-trip tests.
struct Baked {
  std::unique_ptr<rtl::Module> design;
  flow::FlowContext ctx;
};

const Baked& baked() {
  static const Baked* b = [] {
    auto* out = new Baked;
    out->design = std::make_unique<rtl::Module>(rtl::designs::counter(8));
    flow::FlowConfig cfg;
    cfg.node = pdk::standard_node("sky130ish").value();
    cfg.quality = flow::FlowQuality::kOpen;
    cfg.seed = 11;
    auto res = flow::run_reference_flow(*out->design, cfg);
    if (!res.ok()) {
      ADD_FAILURE() << "reference flow failed: " << res.status().to_string();
    } else {
      out->ctx.config = cfg;
      out->ctx.artifacts = std::move(res->artifacts);
      out->ctx.steps = std::move(res->steps);
    }
    out->ctx.artifacts.design = out->design.get();
    return out;
  }();
  return *b;
}

template <typename T>
std::vector<std::uint8_t> bytes_of(const T& value) {
  util::WireWriter w;
  flow::serialize(w, value);
  return std::move(w).take();
}

TEST(SerializeTest, LibraryRoundTripIsByteStable) {
  const auto& a = baked().ctx.artifacts;
  ASSERT_NE(a.library, nullptr);
  const auto bytes = bytes_of(*a.library);
  util::WireReader r(bytes);
  auto lib = flow::deserialize_library(r);
  ASSERT_TRUE(lib.ok()) << lib.status().to_string();
  EXPECT_EQ(lib->name(), a.library->name());
  EXPECT_EQ(lib->size(), a.library->size());
  EXPECT_EQ(bytes_of(*lib), bytes);  // re-encoding is the identity
}

TEST(SerializeTest, AigRoundTripIsByteStable) {
  const auto& a = baked().ctx.artifacts;
  ASSERT_NE(a.aig, nullptr);
  const auto bytes = bytes_of(*a.aig);
  util::WireReader r(bytes);
  auto aig = flow::deserialize_aig(r);
  ASSERT_TRUE(aig.ok()) << aig.status().to_string();
  EXPECT_EQ(aig->num_nodes(), a.aig->num_nodes());
  EXPECT_EQ(bytes_of(*aig), bytes);
}

TEST(SerializeTest, NetlistRoundTripPreservesDigest) {
  const auto& a = baked().ctx.artifacts;
  ASSERT_NE(a.mapped, nullptr);
  const auto bytes = bytes_of(*a.mapped);
  util::WireReader r(bytes);
  auto nl = flow::deserialize_netlist(r, a.library.get());
  ASSERT_TRUE(nl.ok()) << nl.status().to_string();
  EXPECT_EQ(flow::digest_of(*nl), flow::digest_of(*a.mapped));
  EXPECT_EQ(bytes_of(*nl), bytes);
}

TEST(SerializeTest, PlacedRoundTripPreservesDigest) {
  const auto& a = baked().ctx.artifacts;
  ASSERT_NE(a.placed, nullptr);
  const auto bytes = bytes_of(*a.placed);
  util::WireReader r(bytes);
  auto placed = flow::deserialize_placed(r, a.mapped.get());
  ASSERT_TRUE(placed.ok()) << placed.status().to_string();
  EXPECT_EQ(flow::digest_of(*placed), flow::digest_of(*a.placed));
  EXPECT_EQ(bytes_of(*placed), bytes);
}

TEST(SerializeTest, ClockTreeRoundTripIsByteStable) {
  const auto& a = baked().ctx.artifacts;
  ASSERT_NE(a.clock_tree, nullptr) << "counter is sequential; CTS expected";
  const auto bytes = bytes_of(*a.clock_tree);
  util::WireReader r(bytes);
  auto tree = flow::deserialize_clock_tree(r);
  ASSERT_TRUE(tree.ok()) << tree.status().to_string();
  EXPECT_EQ(tree->num_sinks, a.clock_tree->num_sinks);
  EXPECT_EQ(bytes_of(*tree), bytes);
}

TEST(SerializeTest, RoutedRoundTripPreservesDigest) {
  const auto& a = baked().ctx.artifacts;
  ASSERT_NE(a.routed, nullptr);
  const auto bytes = bytes_of(*a.routed);
  util::WireReader r(bytes);
  auto routed = flow::deserialize_routed(r, a.placed.get());
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  EXPECT_EQ(flow::digest_of(*routed), flow::digest_of(*a.routed));
  EXPECT_EQ(bytes_of(*routed), bytes);
}

TEST(SerializeTest, ReportsRoundTripByteStable) {
  const auto& a = baked().ctx.artifacts;
  {
    const auto bytes = bytes_of(a.timing);
    util::WireReader r(bytes);
    auto t = flow::deserialize_timing(r);
    ASSERT_TRUE(t.ok()) << t.status().to_string();
    EXPECT_EQ(t->wns_ps, a.timing.wns_ps);
    EXPECT_EQ(t->endpoints.size(), a.timing.endpoints.size());
    EXPECT_EQ(bytes_of(*t), bytes);
  }
  {
    const auto bytes = bytes_of(a.power);
    util::WireReader r(bytes);
    auto p = flow::deserialize_power(r);
    ASSERT_TRUE(p.ok()) << p.status().to_string();
    EXPECT_EQ(p->total_uw, a.power.total_uw);
    EXPECT_EQ(bytes_of(*p), bytes);
  }
  {
    const auto bytes = bytes_of(a.drc);
    util::WireReader r(bytes);
    auto d = flow::deserialize_drc(r);
    ASSERT_TRUE(d.ok()) << d.status().to_string();
    EXPECT_EQ(d->violations.size(), a.drc.violations.size());
    EXPECT_EQ(bytes_of(*d), bytes);
  }
  {
    const auto bytes = bytes_of(baked().ctx.steps);
    util::WireReader r(bytes);
    auto s = flow::deserialize_steps(r);
    ASSERT_TRUE(s.ok()) << s.status().to_string();
    ASSERT_EQ(s->size(), baked().ctx.steps.size());
    for (std::size_t i = 0; i < s->size(); ++i) {
      EXPECT_EQ((*s)[i].name, baked().ctx.steps[i].name);
    }
    EXPECT_EQ(bytes_of(*s), bytes);
  }
}

TEST(SerializeSnapshotTest, RoundTripPreservesEveryArtifact) {
  const Baked& b = baked();
  const auto bytes = flow::serialize_snapshot(b.ctx);
  ASSERT_GT(bytes.size(), 24u);

  flow::FlowContext out;
  out.artifacts.design = b.design.get();
  const auto st = flow::deserialize_snapshot(bytes, out);
  ASSERT_TRUE(st.ok()) << st.to_string();

  ASSERT_NE(out.artifacts.mapped, nullptr);
  ASSERT_NE(out.artifacts.placed, nullptr);
  ASSERT_NE(out.artifacts.routed, nullptr);
  EXPECT_EQ(flow::digest_of(*out.artifacts.mapped),
            flow::digest_of(*b.ctx.artifacts.mapped));
  EXPECT_EQ(flow::digest_of(*out.artifacts.placed),
            flow::digest_of(*b.ctx.artifacts.placed));
  EXPECT_EQ(flow::digest_of(*out.artifacts.routed),
            flow::digest_of(*b.ctx.artifacts.routed));
  EXPECT_EQ(out.artifacts.gds_bytes, b.ctx.artifacts.gds_bytes);
  EXPECT_EQ(out.steps.size(), b.ctx.steps.size());
  EXPECT_EQ(out.artifacts.design, b.design.get());  // borrowed ptr untouched

  // Serialization is deterministic: round-tripped context re-encodes to
  // the identical byte stream (the property the content-addressed remote
  // cache relies on).
  out.config = b.ctx.config;
  EXPECT_EQ(flow::serialize_snapshot(out), bytes);
}

TEST(SerializeSnapshotTest, EveryTruncationIsRejectedCleanly) {
  const auto bytes = flow::serialize_snapshot(baked().ctx);
  // Every prefix must fail with a Status (digest trailer or bounds check),
  // never crash. Stride keeps the loop fast on multi-KB streams.
  const std::size_t stride = bytes.size() / 257 + 1;
  for (std::size_t len = 0; len < bytes.size(); len += stride) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    flow::FlowContext out;
    EXPECT_FALSE(flow::deserialize_snapshot(prefix, out).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(SerializeSnapshotTest, EveryByteFlipIsRejected) {
  const auto bytes = flow::serialize_snapshot(baked().ctx);
  const std::size_t stride = bytes.size() / 97 + 1;
  for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x5Au;
    flow::FlowContext out;
    EXPECT_FALSE(flow::deserialize_snapshot(corrupt, out).ok())
        << "flip at byte " << pos << " decoded";
  }
}

TEST(SerializeSnapshotTest, WrongVersionIsRejected) {
  // A stream whose digest is valid but whose version is unknown must be
  // rejected by the header check, not mis-parsed.
  util::WireWriter w;
  w.u32(flow::kWireMagic);
  w.u32(flow::kWireVersion + 1);
  w.boolean(false);  // padding past the minimum-size gate
  auto payload = std::move(w).take();
  util::Hasher h;
  h.bytes(payload.data(), payload.size());
  const auto d = h.finalize();
  util::WireWriter trailer;
  trailer.u64(d.hi);
  trailer.u64(d.lo);
  for (auto byte : std::move(trailer).take()) payload.push_back(byte);
  flow::FlowContext out;
  const auto st = flow::deserialize_snapshot(payload, out);
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace eurochip
