#include <gtest/gtest.h>

#include "eurochip/netlist/liberty.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"

namespace eurochip::netlist {
namespace {

CellLibrary lib() {
  return pdk::build_library(pdk::standard_node("sky130ish").value());
}

TEST(LibertyTest, EmitsHeaderAndUnits) {
  const std::string text = write_liberty(lib());
  EXPECT_NE(text.find("library (sky130ish_stdcells)"), std::string::npos);
  EXPECT_NE(text.find("delay_model : table_lookup;"), std::string::npos);
  EXPECT_NE(text.find("time_unit : \"1ps\";"), std::string::npos);
}

TEST(LibertyTest, CellCountMatchesLibrary) {
  const CellLibrary l = lib();
  const auto summary = read_liberty_summary(write_liberty(l));
  ASSERT_TRUE(summary.ok()) << summary.status().to_string();
  EXPECT_EQ(summary->num_cells, l.size());
  EXPECT_EQ(summary->library_name, l.name());
  EXPECT_TRUE(summary->has_units);
}

TEST(LibertyTest, SequentialCellsEmitFfGroups) {
  const CellLibrary l = lib();
  std::size_t expected_ff = 0;
  for (std::size_t i = 0; i < l.size(); ++i) {
    if (l.cell(i).is_sequential()) ++expected_ff;
  }
  const auto summary = read_liberty_summary(write_liberty(l));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->num_ff, expected_ff);
  EXPECT_GE(expected_ff, 1u);
}

TEST(LibertyTest, PinCountConsistent) {
  const CellLibrary l = lib();
  std::size_t expected_pins = 0;
  for (std::size_t i = 0; i < l.size(); ++i) {
    const auto& c = l.cell(i);
    // comb: inputs + Y; seq: D + CK + Q.
    expected_pins += c.is_sequential()
                         ? 3
                         : static_cast<std::size_t>(c.num_inputs()) + 1;
  }
  const auto summary = read_liberty_summary(write_liberty(l));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->num_pins, expected_pins);
}

TEST(LibertyTest, FunctionsContainPinNames) {
  const std::string text = write_liberty(lib());
  EXPECT_NE(text.find("function : \"!(A & B)\""), std::string::npos);  // nand2
  EXPECT_NE(text.find("function : \"(A ^ B)\""), std::string::npos);   // xor2
  EXPECT_NE(text.find("function : \"!((A & B) | C)\""), std::string::npos);
}

TEST(LibertyTest, AllNodesEmitValidLiberty) {
  for (const auto& node : pdk::standard_nodes()) {
    const auto l = pdk::build_library(node);
    const auto summary = read_liberty_summary(write_liberty(l));
    ASSERT_TRUE(summary.ok()) << node.name;
    EXPECT_EQ(summary->num_cells, l.size()) << node.name;
  }
}

TEST(LibertyTest, ReaderRejectsBrokenInput) {
  EXPECT_FALSE(read_liberty_summary("").ok());
  EXPECT_FALSE(read_liberty_summary("cell (X) { }").ok());  // no library
  std::string text = write_liberty(lib());
  text.pop_back();
  text.pop_back();  // drop the closing brace
  EXPECT_FALSE(read_liberty_summary(text).ok());
  EXPECT_FALSE(read_liberty_summary("library (x) { } }").ok());
}

}  // namespace
}  // namespace eurochip::netlist
