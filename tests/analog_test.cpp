#include <gtest/gtest.h>

#include "eurochip/analog/device.hpp"
#include "eurochip/analog/ota.hpp"
#include "eurochip/pdk/registry.hpp"

namespace eurochip::analog {
namespace {

MosParams sky_params() {
  return mos_params(pdk::standard_node("sky130ish").value());
}

TEST(DeviceTest, SquareLawConsistency) {
  const MosParams p = sky_params();
  Device d;
  d.w_um = 10.0;
  d.l_um = 0.26;
  d.id_ua = 50.0;
  const double vov = overdrive_v(p, d);
  EXPECT_GT(vov, 0.0);
  // Plugging the overdrive back into the forward equation recovers Id.
  EXPECT_NEAR(drain_current_ua(p, d, vov), d.id_ua, 1e-6);
  EXPECT_DOUBLE_EQ(drain_current_ua(p, d, -0.1), 0.0);  // cut-off
}

TEST(DeviceTest, GmScalesWithCurrentAtFixedVov) {
  const MosParams p = sky_params();
  Device small;
  small.w_um = 5.0;
  small.l_um = 0.26;
  small.id_ua = 20.0;
  Device big = small;
  big.w_um = 20.0;   // 4x W at 4x Id keeps Vov constant
  big.id_ua = 80.0;
  EXPECT_NEAR(overdrive_v(p, small), overdrive_v(p, big), 1e-9);
  EXPECT_NEAR(gm_ua_v(p, big) / gm_ua_v(p, small), 4.0, 1e-9);
}

TEST(DeviceTest, LongerChannelRaisesGain) {
  const MosParams p = sky_params();
  Device short_l;
  short_l.w_um = 10.0;
  short_l.l_um = p.lmin_um;
  short_l.id_ua = 50.0;
  Device long_l = short_l;
  long_l.l_um = 4.0 * p.lmin_um;
  long_l.w_um = 40.0;  // same W/L
  EXPECT_GT(intrinsic_gain(p, long_l), intrinsic_gain(p, short_l));
}

TEST(DeviceTest, AdvancedNodesLoseIntrinsicGain) {
  // The paper's analog story: scaling does not help analog.
  Device d;
  d.id_ua = 50.0;
  const auto gain_at = [&d](const char* node_name) {
    const MosParams p =
        mos_params(pdk::standard_node(node_name).value());
    Device dev = d;
    dev.l_um = p.lmin_um;
    dev.w_um = 20.0 * p.lmin_um;
    return intrinsic_gain(p, dev);
  };
  EXPECT_GT(gain_at("gf180ish"), gain_at("commercial28"));
  EXPECT_GT(gain_at("commercial28"), gain_at("commercial7"));
}

TEST(DeviceTest, SupplyShrinksWithNode) {
  const auto p180 = mos_params(pdk::standard_node("gf180ish").value());
  const auto p7 = mos_params(pdk::standard_node("commercial7").value());
  EXPECT_GT(p180.supply_v, p7.supply_v);
  // Threshold shrinks far less: headroom fraction collapses.
  EXPECT_GT(p180.supply_v / p180.vth_v, p7.supply_v / p7.vth_v);
}

TEST(OtaTest, EvaluationProducesSaneNumbers) {
  const MosParams p = sky_params();
  OtaSizing s;
  s.input_pair = {20.0, 0.5, 25.0};
  s.mirror = {10.0, 0.5, 25.0};
  s.tail = {40.0, 0.5, 50.0};
  s.load_cap_ff = 100.0;
  const OtaPerformance perf = evaluate_ota(p, s);
  EXPECT_TRUE(perf.bias_feasible);
  EXPECT_GT(perf.dc_gain_db, 20.0);
  EXPECT_GT(perf.gbw_mhz, 1.0);
  EXPECT_NEAR(perf.power_uw, p.supply_v * 50.0, 1e-9);
}

TEST(OtaTest, SizerMeetsRelaxedSpecOn130nm) {
  const MosParams p = sky_params();
  OtaSpec spec;
  spec.min_gain_db = 32.0;
  spec.min_gbw_mhz = 20.0;
  spec.max_power_uw = 300.0;
  const SizingResult r = size_ota(p, spec, 7);
  EXPECT_TRUE(r.met) << "gain=" << r.performance.dc_gain_db
                     << " gbw=" << r.performance.gbw_mhz
                     << " pwr=" << r.performance.power_uw;
  EXPECT_GE(r.performance.dc_gain_db, spec.min_gain_db);
  EXPECT_LE(r.performance.power_uw, spec.max_power_uw);
  EXPECT_GT(r.iterations_used, 0);
}

TEST(OtaTest, SizerDeterministicForSeed) {
  const MosParams p = sky_params();
  OtaSpec spec;
  const auto a = size_ota(p, spec, 42, 500);
  const auto b = size_ota(p, spec, 42, 500);
  EXPECT_EQ(a.iterations_used, b.iterations_used);
  EXPECT_DOUBLE_EQ(a.performance.dc_gain_db, b.performance.dc_gain_db);
}

TEST(OtaTest, HighGainSpecHarderAtAdvancedNode) {
  OtaSpec spec;
  spec.min_gain_db = 38.0;
  spec.min_gbw_mhz = 50.0;
  spec.max_power_uw = 500.0;
  const auto r130 =
      size_ota(mos_params(pdk::standard_node("sky130ish").value()), spec, 3);
  const auto r7 =
      size_ota(mos_params(pdk::standard_node("commercial7").value()), spec, 3);
  // The mature node meets the spec; the advanced node struggles (less
  // intrinsic gain, less headroom) — it must not do better.
  EXPECT_TRUE(r130.met);
  EXPECT_LE(r7.performance.dc_gain_db - 0.5, r130.performance.dc_gain_db);
}

}  // namespace
}  // namespace eurochip::analog
