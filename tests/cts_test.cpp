#include <gtest/gtest.h>

#include "eurochip/cts/cts.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/placer.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::cts {
namespace {

struct Physical {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
  std::unique_ptr<place::PlacedDesign> placed;
};

Physical make_physical(const rtl::Module& m) {
  Physical p;
  p.node = pdk::standard_node("sky130ish").value();
  p.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(p.node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *p.lib);
  p.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  auto placed = place::place(*p.nl, p.node);
  p.placed = std::make_unique<place::PlacedDesign>(std::move(*placed));
  return p;
}

TEST(CtsTest, BuildsTreeOverAllSinks) {
  const auto m = rtl::designs::mini_cpu_datapath(8);
  const Physical p = make_physical(m);
  const auto tree = build_htree(*p.placed, p.node);
  ASSERT_TRUE(tree.ok()) << tree.status().to_string();
  EXPECT_EQ(tree->num_sinks, p.nl->sequential_cells().size());
  // Every sink appears in exactly one leaf.
  std::size_t covered = 0;
  for (const auto& n : tree->nodes) covered += n.sinks.size();
  EXPECT_EQ(covered, tree->num_sinks);
  EXPECT_GT(tree->buffer_count, 0);
  EXPECT_GT(tree->total_wirelength_um, 0.0);
  EXPECT_GT(tree->clock_cap_ff, 0.0);
}

TEST(CtsTest, CombinationalDesignRejected) {
  const auto m = rtl::designs::adder(8);
  const Physical p = make_physical(m);
  const auto tree = build_htree(*p.placed, p.node);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), util::ErrorCode::kFailedPrecondition);
}

TEST(CtsTest, LeafSizeRespected) {
  const auto m = rtl::designs::shift_register(8, 8);  // 64 flops
  const Physical p = make_physical(m);
  CtsOptions opt;
  opt.max_sinks_per_leaf = 4;
  const auto tree = build_htree(*p.placed, p.node, opt);
  ASSERT_TRUE(tree.ok());
  for (const auto& n : tree->nodes) {
    EXPECT_LE(n.sinks.size(), 4u);
  }
  EXPECT_GE(tree->depth, 4);  // 64 sinks / 4 per leaf needs >= 16 leaves
}

TEST(CtsTest, HtreeSkewBeatsStar) {
  const auto m = rtl::designs::mini_cpu_datapath(12);
  const Physical p = make_physical(m);
  const auto htree = build_htree(*p.placed, p.node);
  const auto star = build_star(*p.placed, p.node);
  ASSERT_TRUE(htree.ok());
  ASSERT_TRUE(star.ok());
  EXPECT_LT(htree->skew_ps(), star->skew_ps());
}

TEST(CtsTest, InsertionDelayOrdering) {
  const auto m = rtl::designs::fir_filter(8, 6);
  const Physical p = make_physical(m);
  const auto tree = build_htree(*p.placed, p.node);
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->max_insertion_delay_ps, tree->min_insertion_delay_ps);
  EXPECT_GE(tree->min_insertion_delay_ps, 0.0);
  EXPECT_GE(tree->skew_ps(), 0.0);
}

TEST(CtsTest, SingleFlopDegenerateTree) {
  const auto m = rtl::designs::counter(1);
  const Physical p = make_physical(m);
  const auto tree = build_htree(*p.placed, p.node);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_sinks, 1u);
  EXPECT_EQ(tree->buffer_count, 0);  // root is itself the leaf
  EXPECT_DOUBLE_EQ(tree->skew_ps(), 0.0);
}

TEST(CtsTest, MoreSinksMoreBuffers) {
  const auto small = make_physical(rtl::designs::shift_register(4, 4));
  const auto large = make_physical(rtl::designs::shift_register(8, 16));
  CtsOptions opt;
  opt.max_sinks_per_leaf = 4;
  const auto ts = build_htree(*small.placed, small.node, opt);
  const auto tl = build_htree(*large.placed, large.node, opt);
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(tl.ok());
  EXPECT_GT(tl->buffer_count, ts->buffer_count);
  EXPECT_GT(tl->clock_cap_ff, ts->clock_cap_ff);
}

}  // namespace
}  // namespace eurochip::cts
