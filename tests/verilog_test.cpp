#include <gtest/gtest.h>

#include "eurochip/netlist/verilog.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::netlist {
namespace {

struct Mapped {
  std::unique_ptr<CellLibrary> lib;
  std::unique_ptr<Netlist> nl;
};

Mapped map_design(const rtl::Module& m) {
  Mapped d;
  const auto node = pdk::standard_node("sky130ish").value();
  d.lib = std::make_unique<CellLibrary>(pdk::build_library(node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *d.lib);
  d.nl = std::make_unique<Netlist>(std::move(*mapped));
  return d;
}

TEST(VerilogTest, EmitsModuleWithAllSections) {
  const auto m = rtl::designs::counter(8);
  const Mapped d = map_design(m);
  const std::string v = write_verilog(*d.nl);
  EXPECT_NE(v.find("module mapped("), std::string::npos);
  EXPECT_NE(v.find("input clk;"), std::string::npos);  // sequential design
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("DFF_X1"), std::string::npos);
  EXPECT_NE(v.find(".CK(clk)"), std::string::npos);
}

TEST(VerilogTest, CombinationalDesignHasNoClock) {
  const auto m = rtl::designs::adder(8);
  const Mapped d = map_design(m);
  const std::string v = write_verilog(*d.nl);
  EXPECT_EQ(v.find("input clk;"), std::string::npos);
}

TEST(VerilogTest, SanitizesBracketedNames) {
  const auto m = rtl::designs::counter(4);
  const Mapped d = map_design(m);
  const std::string v = write_verilog(*d.nl);
  // Ports are named count[0]... -> must be emitted with brackets escaped.
  EXPECT_EQ(v.find('['), std::string::npos);
  EXPECT_NE(v.find("count_0_"), std::string::npos);
}

TEST(VerilogTest, InstanceCountMatchesNetlist) {
  const auto m = rtl::designs::alu(8);
  const Mapped d = map_design(m);
  const auto summary = read_verilog_summary(write_verilog(*d.nl));
  ASSERT_TRUE(summary.ok()) << summary.status().to_string();
  EXPECT_EQ(summary->num_instances, d.nl->num_cells());
  EXPECT_EQ(summary->num_outputs, d.nl->outputs().size());
  EXPECT_TRUE(summary->has_clock);
  EXPECT_EQ(summary->module_name, "mapped");
}

TEST(VerilogTest, SummaryRoundTripOnCatalog) {
  for (auto& e : rtl::designs::standard_catalog()) {
    const Mapped d = map_design(e.module);
    const auto summary = read_verilog_summary(write_verilog(*d.nl));
    ASSERT_TRUE(summary.ok()) << e.name;
    EXPECT_EQ(summary->num_instances, d.nl->num_cells()) << e.name;
    // clk port added for sequential designs only.
    const bool sequential = !d.nl->sequential_cells().empty();
    EXPECT_EQ(summary->num_inputs,
              d.nl->inputs().size() + (sequential ? 1 : 0))
        << e.name;
  }
}

TEST(VerilogTest, ReaderRejectsMalformedText) {
  EXPECT_FALSE(read_verilog_summary("").ok());
  EXPECT_FALSE(read_verilog_summary("wire w;\n").ok());
  EXPECT_FALSE(read_verilog_summary("module m(a);\n").ok());  // no endmodule
  EXPECT_FALSE(
      read_verilog_summary("module m(a);\n  garbage statement\nendmodule\n")
          .ok());
}

TEST(VerilogTest, UniquifiesCollidingSanitizedNames) {
  // Sanitization is lossy: "a.b" and "a[b" both escape to "a_b", and the
  // emitter used to let them collide into one identifier. Distinct source
  // names must stay distinct in the emitted module.
  const auto node = pdk::standard_node("sky130ish").value();
  const CellLibrary lib = pdk::build_library(node);
  const auto and2 = static_cast<std::uint32_t>(lib.find("AND2_X1").value());
  Netlist nl(&lib, "t");
  const NetId a = nl.add_input("a.b");
  const NetId b = nl.add_input("a[b");
  const auto g1 = nl.add_cell("g.1", and2, {a, b});
  const auto g2 = nl.add_cell("g[1", and2, {a, b});
  ASSERT_TRUE(g1.ok() && g2.ok());
  nl.add_output("y", nl.cell(g2.value()).output);
  const std::string v = write_verilog(nl);

  const auto count = [&v](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = v.find(needle); at != std::string::npos;
         at = v.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  // Each port declared exactly once, under distinct names.
  EXPECT_EQ(count("input a_b;"), 1u);
  EXPECT_EQ(count("input a_b_2;"), 1u);
  // Both instances present, under distinct names.
  EXPECT_EQ(count(" g_1 ("), 1u);
  EXPECT_EQ(count(" g_1_2 ("), 1u);
  EXPECT_TRUE(read_verilog_summary(v).ok());
}

TEST(VerilogTest, WideCellPinsStayDistinct) {
  // The emitter once mapped every input pin >= 3 to ".D", emitting
  // duplicate named connections on wide instances. Assemble a 5-input
  // instance through from_raw (the emitter reads fanin spans as-is) and
  // require one connection per pin letter A..E.
  const auto node = pdk::standard_node("sky130ish").value();
  const CellLibrary lib = pdk::build_library(node);
  RawNetlist raw;
  const auto name = [&raw](const std::string& s) {
    const NameRef r{static_cast<std::uint32_t>(raw.name_arena.size()),
                    static_cast<std::uint32_t>(s.size())};
    raw.name_arena += s;
    return r;
  };
  for (std::uint32_t i = 0; i < 5; ++i) {
    raw.net_name.push_back(name("in" + std::to_string(i)));
    raw.net_driver_kind.push_back(DriverKind::kInput);
    raw.net_driver_cell.push_back(CellId{});
    raw.net_is_output.push_back(0);
    raw.sink_begin.push_back(i);
    raw.sink_pool.push_back(PinRef{CellId{0}, static_cast<std::uint8_t>(i)});
    raw.inputs.push_back(Port{"in" + std::to_string(i), NetId{i}});
    raw.fanin_pool.push_back(NetId{i});
  }
  raw.net_name.push_back(name("wide.out"));
  raw.net_driver_kind.push_back(DriverKind::kCell);
  raw.net_driver_cell.push_back(CellId{0});
  raw.net_is_output.push_back(1);
  raw.sink_begin.push_back(5);
  raw.sink_begin.push_back(5);
  raw.cell_name.push_back(name("wide"));
  raw.cell_lib.push_back(
      static_cast<std::uint32_t>(lib.find("NAND2_X1").value()));
  raw.cell_fanin_begin = {0, 5};
  raw.cell_output.push_back(NetId{5});
  raw.outputs.push_back(Port{"y", NetId{5}});

  const auto nl = Netlist::from_raw(&lib, "wide_test", std::move(raw));
  ASSERT_TRUE(nl.ok()) << nl.status().to_string();
  const std::string v = write_verilog(*nl);
  EXPECT_NE(v.find(".C(in2)"), std::string::npos);
  EXPECT_NE(v.find(".D(in3)"), std::string::npos);
  EXPECT_NE(v.find(".E(in4)"), std::string::npos);
  // Exactly one .D connection — no duplicates from the pin >= 3 fallback.
  EXPECT_EQ(v.find(".D("), v.rfind(".D("));
}

TEST(VerilogTest, CommentsToggle) {
  const auto m = rtl::designs::adder(4);
  const Mapped d = map_design(m);
  VerilogOptions opt;
  opt.emit_comments = false;
  const std::string v = write_verilog(*d.nl, opt);
  EXPECT_EQ(v.find("//"), std::string::npos);
  EXPECT_TRUE(read_verilog_summary(v).ok());
}

}  // namespace
}  // namespace eurochip::netlist
