#include <gtest/gtest.h>

#include "eurochip/netlist/verilog.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::netlist {
namespace {

struct Mapped {
  std::unique_ptr<CellLibrary> lib;
  std::unique_ptr<Netlist> nl;
};

Mapped map_design(const rtl::Module& m) {
  Mapped d;
  const auto node = pdk::standard_node("sky130ish").value();
  d.lib = std::make_unique<CellLibrary>(pdk::build_library(node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *d.lib);
  d.nl = std::make_unique<Netlist>(std::move(*mapped));
  return d;
}

TEST(VerilogTest, EmitsModuleWithAllSections) {
  const auto m = rtl::designs::counter(8);
  const Mapped d = map_design(m);
  const std::string v = write_verilog(*d.nl);
  EXPECT_NE(v.find("module mapped("), std::string::npos);
  EXPECT_NE(v.find("input clk;"), std::string::npos);  // sequential design
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("DFF_X1"), std::string::npos);
  EXPECT_NE(v.find(".CK(clk)"), std::string::npos);
}

TEST(VerilogTest, CombinationalDesignHasNoClock) {
  const auto m = rtl::designs::adder(8);
  const Mapped d = map_design(m);
  const std::string v = write_verilog(*d.nl);
  EXPECT_EQ(v.find("input clk;"), std::string::npos);
}

TEST(VerilogTest, SanitizesBracketedNames) {
  const auto m = rtl::designs::counter(4);
  const Mapped d = map_design(m);
  const std::string v = write_verilog(*d.nl);
  // Ports are named count[0]... -> must be emitted with brackets escaped.
  EXPECT_EQ(v.find('['), std::string::npos);
  EXPECT_NE(v.find("count_0_"), std::string::npos);
}

TEST(VerilogTest, InstanceCountMatchesNetlist) {
  const auto m = rtl::designs::alu(8);
  const Mapped d = map_design(m);
  const auto summary = read_verilog_summary(write_verilog(*d.nl));
  ASSERT_TRUE(summary.ok()) << summary.status().to_string();
  EXPECT_EQ(summary->num_instances, d.nl->num_cells());
  EXPECT_EQ(summary->num_outputs, d.nl->outputs().size());
  EXPECT_TRUE(summary->has_clock);
  EXPECT_EQ(summary->module_name, "mapped");
}

TEST(VerilogTest, SummaryRoundTripOnCatalog) {
  for (auto& e : rtl::designs::standard_catalog()) {
    const Mapped d = map_design(e.module);
    const auto summary = read_verilog_summary(write_verilog(*d.nl));
    ASSERT_TRUE(summary.ok()) << e.name;
    EXPECT_EQ(summary->num_instances, d.nl->num_cells()) << e.name;
    // clk port added for sequential designs only.
    const bool sequential = !d.nl->sequential_cells().empty();
    EXPECT_EQ(summary->num_inputs,
              d.nl->inputs().size() + (sequential ? 1 : 0))
        << e.name;
  }
}

TEST(VerilogTest, ReaderRejectsMalformedText) {
  EXPECT_FALSE(read_verilog_summary("").ok());
  EXPECT_FALSE(read_verilog_summary("wire w;\n").ok());
  EXPECT_FALSE(read_verilog_summary("module m(a);\n").ok());  // no endmodule
  EXPECT_FALSE(
      read_verilog_summary("module m(a);\n  garbage statement\nendmodule\n")
          .ok());
}

TEST(VerilogTest, CommentsToggle) {
  const auto m = rtl::designs::adder(4);
  const Mapped d = map_design(m);
  VerilogOptions opt;
  opt.emit_comments = false;
  const std::string v = write_verilog(*d.nl, opt);
  EXPECT_EQ(v.find("//"), std::string::npos);
  EXPECT_TRUE(read_verilog_summary(v).ok());
}

}  // namespace
}  // namespace eurochip::netlist
