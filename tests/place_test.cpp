#include <gtest/gtest.h>

#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/floorplan.hpp"
#include "eurochip/place/placer.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::place {
namespace {

struct TestDesign {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
};

TestDesign make_design(const rtl::Module& m,
                       const std::string& node_name = "sky130ish") {
  TestDesign d;
  d.node = pdk::standard_node(node_name).value();
  d.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(d.node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *d.lib);
  d.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  return d;
}

TEST(FloorplanTest, CoreFitsCells) {
  const auto m = rtl::designs::alu(8);
  const TestDesign d = make_design(m);
  auto fp = Floorplan::create(*d.nl, d.node, 0.6);
  ASSERT_TRUE(fp.ok());
  // Core must be able to hold the cells at the requested density.
  std::int64_t cell_area = 0;
  for (auto id : d.nl->all_cells()) {
    cell_area += d.nl->lib_cell(id).width_dbu * fp->row_height();
  }
  EXPECT_GE(fp->core().area(), cell_area);
  EXPECT_LE(static_cast<double>(cell_area) /
                static_cast<double>(fp->core().area()),
            0.65);
  EXPECT_FALSE(fp->rows().empty());
}

TEST(FloorplanTest, RowsTileTheCore) {
  const auto m = rtl::designs::counter(12);
  const TestDesign d = make_design(m);
  const auto fp = Floorplan::create(*d.nl, d.node, 0.5);
  ASSERT_TRUE(fp.ok());
  std::int64_t covered = 0;
  for (const Row& r : fp->rows()) {
    EXPECT_EQ(r.bounds.height(), fp->row_height());
    EXPECT_EQ(r.bounds.lx, fp->core().lx);
    EXPECT_EQ(r.bounds.ux, fp->core().ux);
    covered += r.bounds.area();
  }
  EXPECT_EQ(covered, fp->core().area());
}

TEST(FloorplanTest, RejectsBadUtilization) {
  const auto m = rtl::designs::counter(4);
  const TestDesign d = make_design(m);
  EXPECT_FALSE(Floorplan::create(*d.nl, d.node, 0.0).ok());
  EXPECT_FALSE(Floorplan::create(*d.nl, d.node, 0.99).ok());
}

TEST(FloorplanTest, DieAreaInMm2Positive) {
  const auto m = rtl::designs::alu(8);
  const TestDesign d = make_design(m);
  const auto fp = Floorplan::create(*d.nl, d.node, 0.6);
  ASSERT_TRUE(fp.ok());
  EXPECT_GT(fp->die_area_mm2(), 0.0);
  EXPECT_LT(fp->die_area_mm2(), 10.0);  // small block
}

TEST(PlaceTest, ProducesLegalPlacement) {
  const auto m = rtl::designs::alu(8);
  const TestDesign d = make_design(m);
  PlaceStats stats;
  const auto placed = place(*d.nl, d.node, {}, &stats);
  ASSERT_TRUE(placed.ok()) << placed.status().to_string();
  EXPECT_TRUE(placed->is_legal());
  EXPECT_EQ(placed->overlap_count(), 0u);
  EXPECT_EQ(stats.cells, d.nl->num_cells());
  EXPECT_GT(stats.hpwl_final, 0);
}

TEST(PlaceTest, GlobalPlacementBeatsRandom) {
  const auto m = rtl::designs::mini_cpu_datapath(8);
  const TestDesign d = make_design(m);
  PlacementOptions random_opt;
  random_opt.random_only = true;
  random_opt.detailed_passes = 0;
  PlacementOptions global_opt;
  const auto random_placed = place(*d.nl, d.node, random_opt);
  const auto global_placed = place(*d.nl, d.node, global_opt);
  ASSERT_TRUE(random_placed.ok());
  ASSERT_TRUE(global_placed.ok());
  EXPECT_LT(global_placed->total_hpwl(), random_placed->total_hpwl());
}

TEST(PlaceTest, DetailedPassImprovesOrEqual) {
  const auto m = rtl::designs::fir_filter(8, 4);
  const TestDesign d = make_design(m);
  PlacementOptions no_detail;
  no_detail.detailed_passes = 0;
  PlacementOptions with_detail;
  with_detail.detailed_passes = 3;
  const auto a = place(*d.nl, d.node, no_detail);
  const auto b = place(*d.nl, d.node, with_detail);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->total_hpwl(), a->total_hpwl());
}

TEST(PlaceTest, DeterministicForSeed) {
  const auto m = rtl::designs::counter(16);
  const TestDesign d = make_design(m);
  PlacementOptions opt;
  opt.seed = 77;
  const auto a = place(*d.nl, d.node, opt);
  const auto b = place(*d.nl, d.node, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cell_origin.size(), b->cell_origin.size());
  for (std::size_t i = 0; i < a->cell_origin.size(); ++i) {
    EXPECT_EQ(a->cell_origin[i], b->cell_origin[i]) << i;
  }
}

TEST(PlaceTest, PadsOnDieBoundary) {
  const auto m = rtl::designs::adder(8);
  const TestDesign d = make_design(m);
  const auto placed = place(*d.nl, d.node);
  ASSERT_TRUE(placed.ok());
  const auto& die = placed->floorplan.die();
  for (const auto& p : placed->input_pad) {
    EXPECT_TRUE(p.x == die.lx || p.y == die.ly) << p.x << "," << p.y;
  }
  for (const auto& p : placed->output_pad) {
    EXPECT_TRUE(p.x == die.ux || p.y == die.uy) << p.x << "," << p.y;
  }
}

TEST(PlaceTest, WorksAcrossNodes) {
  const auto m = rtl::designs::alu(8);
  for (const char* node_name : {"gf180ish", "commercial28", "commercial7"}) {
    const TestDesign d = make_design(m, node_name);
    const auto placed = place(*d.nl, d.node);
    ASSERT_TRUE(placed.ok()) << node_name;
    EXPECT_TRUE(placed->is_legal()) << node_name;
  }
}

TEST(PlaceTest, HpwlScalesDownWithFeatureSize) {
  const auto m = rtl::designs::alu(8);
  const TestDesign d180 = make_design(m, "gf180ish");
  const TestDesign d7 = make_design(m, "commercial7");
  const auto p180 = place(*d180.nl, d180.node);
  const auto p7 = place(*d7.nl, d7.node);
  ASSERT_TRUE(p180.ok());
  ASSERT_TRUE(p7.ok());
  EXPECT_LT(p7->total_hpwl(), p180->total_hpwl());
}

}  // namespace
}  // namespace eurochip::place
