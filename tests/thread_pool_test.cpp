// util::ThreadPool: coverage, slot bounds, nesting, exception
// propagation, concurrent callers, and the deterministic-reduction
// pattern the parallel kernels rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "eurochip/util/thread_pool.hpp"

namespace eurochip::util {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, 16, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SlotsStayInBounds) {
  ThreadPool pool(4);
  std::atomic<bool> bad{false};
  pool.parallel_for_slots(10000, 8, [&](int slot, std::size_t) {
    if (slot < 0 || slot >= pool.size()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, SerialKnobRunsInOrderOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> seen;
  parallel_for(/*threads_knob=*/1, 100, 8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), 100u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ThreadPoolTest, ZeroAndTinyLoops) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> acalls{0};
  pool.parallel_for(1, 4, [&](std::size_t) { ++acalls; });
  EXPECT_EQ(acalls.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(5000, 4,
                        [](std::size_t i) {
                          if (i == 1234) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(1000, 8, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ThreadPoolTest, NestedLoopsDoNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<std::size_t>> inner_sum(8);
  pool.parallel_for(8, 1, [&](std::size_t outer) {
    // A worker calling parallel_for becomes the inner loop's caller and
    // makes progress even if every helper is busy.
    pool.parallel_for(1000, 16, [&](std::size_t inner) {
      inner_sum[outer].fetch_add(inner, std::memory_order_relaxed);
    });
  });
  for (auto& s : inner_sum) EXPECT_EQ(s.load(), 999u * 1000u / 2);
}

TEST(ThreadPoolTest, ManyExternalCallersShareThePool) {
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  std::vector<std::atomic<std::size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(5000, 32, [&, c](std::size_t i) {
        sums[c].fetch_add(i, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (auto& s : sums) EXPECT_EQ(s.load(), 4999u * 5000u / 2);
}

TEST(ThreadPoolTest, ResolveFollowsKnobConvention) {
  EXPECT_GE(ThreadPool::resolve(0), 1);
  EXPECT_EQ(ThreadPool::resolve(1), 1);
  EXPECT_EQ(ThreadPool::resolve(5), 5);
  EXPECT_EQ(max_slots(1), 1);
  EXPECT_GE(max_slots(0), 1);
  EXPECT_LE(max_slots(4), std::max(4, ThreadPool::shared().size()));
}

TEST(ThreadPoolTest, WidthOneRunsInlineEvenOnPool) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(
      200, 8, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*width=*/1);
}

// The determinism recipe used by every kernel: per-fixed-chunk partials
// combined in index order afterwards give the same floating-point result
// at any width.
TEST(ThreadPoolTest, FixedChunkReductionIsWidthInvariant) {
  constexpr std::size_t kN = 4096;
  constexpr std::size_t kChunk = 64;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto reduce_with = [&](int knob) {
    std::vector<double> partial(kN / kChunk, 0.0);
    parallel_for(knob, partial.size(), 1, [&](std::size_t c) {
      double s = 0.0;
      for (std::size_t i = c * kChunk; i < (c + 1) * kChunk; ++i) s += values[i];
      partial[c] = s;
    });
    return std::accumulate(partial.begin(), partial.end(), 0.0);
  };
  const double serial = reduce_with(1);
  EXPECT_EQ(serial, reduce_with(2));
  EXPECT_EQ(serial, reduce_with(4));
  EXPECT_EQ(serial, reduce_with(0));
}

TEST(ThreadPoolTest, DestructionAfterWorkIsClean) {
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(3);
    std::atomic<std::size_t> count{0};
    pool.parallel_for(500, 8, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 500u);
    // Destructor joins helpers with no pending work.
  }
}

}  // namespace
}  // namespace eurochip::util
