// Federated multi-hub service (fed::): consistent-hash routing, the shared
// remote cache tier (including fault-injected network degradation), global
// commercial quotas, and cross-hub work stealing — with the determinism
// contract (identical artifact digests wherever a job runs) checked
// throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eurochip/fed/federation.hpp"
#include "eurochip/fed/remote_cache.hpp"
#include "eurochip/fed/router.hpp"
#include "eurochip/flow/cache.hpp"
#include "eurochip/flow/fingerprint.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/hub/job.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/fault.hpp"

namespace eurochip {
namespace {

flow::FlowConfig open_config(std::uint64_t seed) {
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.quality = flow::FlowQuality::kOpen;
  cfg.seed = seed;
  cfg.threads = 1;
  return cfg;
}

// --- router -------------------------------------------------------------

TEST(FederationRouterTest, RoutingIsDeterministic) {
  fed::Router a(4), b(4);
  for (int i = 0; i < 100; ++i) {
    const auto key =
        fed::Router::shard_key("node" + std::to_string(i % 3),
                               "design" + std::to_string(i));
    EXPECT_EQ(a.hub_for(key), b.hub_for(key));
    EXPECT_LT(a.hub_for(key), 4u);
  }
}

TEST(FederationRouterTest, KeysSpreadAcrossHubs) {
  fed::Router r(4);
  std::vector<int> per_hub(4, 0);
  for (int i = 0; i < 400; ++i) {
    ++per_hub[r.hub_for(
        fed::Router::shard_key("open90", "design" + std::to_string(i)))];
  }
  for (int h = 0; h < 4; ++h) {
    EXPECT_GT(per_hub[h], 0) << "hub " << h << " owns no keys";
  }
}

TEST(FederationRouterTest, AddingAHubRemapsOnlyAFraction) {
  fed::Router r4(4), r5(5);
  int moved = 0;
  const int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    const auto key =
        fed::Router::shard_key("open90", "design" + std::to_string(i));
    if (r4.hub_for(key) != r5.hub_for(key)) ++moved;
  }
  // Consistent hashing: growing 4 -> 5 hubs should remap ~1/5 of keys,
  // not reshuffle everything (naive modulo would move ~80%).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys * 35 / 100);
}

// --- remote cache tier --------------------------------------------------

TEST(FederationRemoteCacheTest, PublishFetchRoundTrip) {
  fed::RemoteCache remote;
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  util::Hasher h;
  h.str("key");
  const auto key = h.finalize();

  std::vector<std::uint8_t> out;
  EXPECT_FALSE(remote.fetch(key, &out));
  remote.publish(key, blob);
  EXPECT_TRUE(remote.contains(key));
  ASSERT_TRUE(remote.fetch(key, &out));
  EXPECT_EQ(out, blob);

  const auto s = remote.stats();
  EXPECT_EQ(s.publishes, 1u);
  EXPECT_EQ(s.fetch_hits, 1u);
  EXPECT_EQ(s.fetch_misses, 1u);
  EXPECT_EQ(s.bytes, blob.size());
}

TEST(FederationRemoteCacheTest, EvictsLeastRecentlyUsed) {
  fed::RemoteCache::Options opts;
  opts.max_bytes = 256;
  fed::RemoteCache remote(opts);
  const std::vector<std::uint8_t> blob(100, 0xAB);
  auto key = [](int i) {
    util::Hasher h;
    h.str("k").u64(static_cast<std::uint64_t>(i));
    return h.finalize();
  };
  remote.publish(key(0), blob);
  remote.publish(key(1), blob);
  // Touch key 0 so key 1 is the LRU victim when key 2 overflows the budget.
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(remote.fetch(key(0), &out));
  remote.publish(key(2), blob);
  EXPECT_TRUE(remote.contains(key(0)));
  EXPECT_FALSE(remote.contains(key(1)));
  EXPECT_TRUE(remote.contains(key(2)));
  EXPECT_EQ(remote.stats().evictions, 1u);
}

TEST(FederationRemoteCacheTest, ChargesTheNetworkCostModel) {
  fed::RemoteCache::Options opts;
  opts.latency_ms = 1.0;
  opts.bandwidth_mb_per_s = 1.0;  // 1000 bytes/ms
  fed::RemoteCache remote(opts);
  const std::vector<std::uint8_t> blob(2000, 7);
  util::Hasher h;
  h.str("cost");
  const auto key = h.finalize();
  remote.publish(key, blob);  // 1 + 2000/1000 = 3 ms
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(remote.fetch(key, &out));  // another 3 ms
  EXPECT_NEAR(remote.stats().simulated_network_ms, 6.0, 1e-9);
}

TEST(FederationRemoteCacheTest, FaultSitesDegradeToMissAndDrop) {
  fed::RemoteCache remote;
  const std::vector<std::uint8_t> blob{9, 9, 9};
  util::Hasher h;
  h.str("faulty");
  const auto key = h.finalize();
  remote.publish(key, blob);

  util::FaultInjector fi;
  fi.add_rule({.site = "fed.remote.fetch",
               .kind = util::FaultKind::kErrorStatus});
  fi.add_rule({.site = "fed.remote.publish",
               .kind = util::FaultKind::kErrorStatus});
  util::FaultInjector::ScopedInstall install(fi);

  std::vector<std::uint8_t> out;
  EXPECT_FALSE(remote.fetch(key, &out));  // unreachable tier = miss
  util::Hasher h2;
  h2.str("dropped");
  remote.publish(h2.finalize(), blob);  // dropped on the floor
  EXPECT_FALSE(remote.contains(h2.finalize()));
}

// --- L1 + L2 cache stack ------------------------------------------------

TEST(FederationCacheStackTest, SecondHubResumesFromRemoteTier) {
  fed::RemoteCache remote;
  const auto design = rtl::designs::counter(6);

  flow::FlowCache a(flow::FlowCache::Options{.max_bytes = 64u << 20,
                                             .second_level = &remote});
  auto cfg = open_config(21);
  cfg.cache = &a;
  const auto first = flow::run_reference_flow(design, cfg);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_EQ(first->cache_hits, 0u);
  EXPECT_GT(remote.stats().publishes, 0u) << "stores must publish to L2";

  // A different hub: cold L1, same shared remote tier.
  flow::FlowCache b(flow::FlowCache::Options{.max_bytes = 64u << 20,
                                             .second_level = &remote});
  cfg.cache = &b;
  const auto second = flow::run_reference_flow(design, cfg);
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_GT(second->cache_hits, 0u);
  EXPECT_GT(b.stats().remote_hits, 0u);
  EXPECT_EQ(flow::digest_of(*second->artifacts.routed),
            flow::digest_of(*first->artifacts.routed));
  EXPECT_EQ(second->artifacts.gds_bytes, first->artifacts.gds_bytes);
}

TEST(FederationCacheStackTest, CorruptRemoteBytesAreRejectedNotTrusted) {
  fed::RemoteCache remote;
  const auto design = rtl::designs::counter(6);

  flow::FlowCache a(flow::FlowCache::Options{.max_bytes = 64u << 20,
                                             .second_level = &remote});
  auto cfg = open_config(22);
  cfg.cache = &a;
  const auto first = flow::run_reference_flow(design, cfg);
  ASSERT_TRUE(first.ok()) << first.status().to_string();

  util::FaultInjector fi;
  fi.add_rule({.site = "fed.remote.corrupt",
               .kind = util::FaultKind::kErrorStatus});
  util::FaultInjector::ScopedInstall install(fi);

  flow::FlowCache b(flow::FlowCache::Options{.max_bytes = 64u << 20,
                                             .second_level = &remote});
  cfg.cache = &b;
  const auto second = flow::run_reference_flow(design, cfg);
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  // Every fetched blob arrived corrupted: the digest trailer rejects it,
  // the run recomputes from scratch, and the result is still correct.
  EXPECT_GT(b.stats().remote_errors, 0u);
  EXPECT_EQ(b.stats().remote_hits, 0u);
  EXPECT_EQ(flow::digest_of(*second->artifacts.routed),
            flow::digest_of(*first->artifacts.routed));
}

TEST(FederationCacheStackTest, RemoteFaultsDegradeTheStackGracefully) {
  fed::RemoteCache remote;
  const auto design = rtl::designs::counter(6);
  util::FaultInjector fi;
  fi.add_rule({.site = "fed.remote.fetch",
               .kind = util::FaultKind::kErrorStatus,
               .probability = 0.5});
  fi.add_rule({.site = "fed.remote.publish",
               .kind = util::FaultKind::kErrorStatus,
               .probability = 0.5});
  util::FaultInjector::ScopedInstall install(fi);

  flow::FlowCache a(flow::FlowCache::Options{.max_bytes = 64u << 20,
                                             .second_level = &remote});
  auto cfg = open_config(23);
  cfg.cache = &a;
  const auto first = flow::run_reference_flow(design, cfg);
  ASSERT_TRUE(first.ok()) << first.status().to_string();

  flow::FlowCache b(flow::FlowCache::Options{.max_bytes = 64u << 20,
                                             .second_level = &remote});
  cfg.cache = &b;
  const auto second = flow::run_reference_flow(design, cfg);
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(flow::digest_of(*second->artifacts.routed),
            flow::digest_of(*first->artifacts.routed));
}

// --- federated service --------------------------------------------------

hub::JobSpec quick_job(const std::string& name, const std::string& design,
                       double sleep_ms = 0.0) {
  hub::JobSpec spec;
  spec.name = name;
  spec.design_name = design;
  spec.work = [sleep_ms](hub::JobContext&) {
    if (sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    return util::Status::Ok();
  };
  return spec;
}

TEST(FederationServiceTest, RoutesRunsAndAggregates) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.hub_options.capacity = 2;
  opts.steal = false;
  fed::FederatedService service(opts);

  std::vector<fed::FedJobId> ids;
  for (int i = 0; i < 12; ++i) {
    auto id = service.submit(
        quick_job("job" + std::to_string(i), "design" + std::to_string(i % 5)));
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(*id);
  }
  const auto records = service.drain();
  EXPECT_EQ(records.size(), 12u);
  for (const auto& r : records) {
    EXPECT_EQ(r.state, hub::JobState::kSucceeded) << r.name;
  }
  const auto s = service.stats();
  EXPECT_EQ(s.submitted, 12u);
  EXPECT_EQ(s.completed, 12u);

  const auto prom = service.export_prometheus();
  EXPECT_NE(prom.find("hub=\"hub-0\""), std::string::npos);
  EXPECT_NE(prom.find("hub=\"hub-1\""), std::string::npos);
}

TEST(FederationServiceTest, SameDesignAlwaysLandsOnOneHub) {
  fed::FederatedService::Options opts;
  opts.hubs = 4;
  opts.hub_options.start_paused = true;
  opts.steal = false;
  fed::FederatedService service(opts);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        service.submit(quick_job("j" + std::to_string(i), "one_design")).ok());
  }
  std::size_t owners = 0;
  for (std::size_t h = 0; h < service.num_hubs(); ++h) {
    if (service.hub(h).queued_count() > 0) ++owners;
  }
  EXPECT_EQ(owners, 1u) << "sharding must keep one design on one hub";
  service.start();
  (void)service.drain();
}

TEST(FederationServiceTest, GlobalCommercialQuotaDegrades) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.hub_options.start_paused = true;
  opts.steal = false;
  opts.max_commercial_inflight = 2;
  opts.quota_degrade = true;
  fed::FederatedService service(opts);

  std::vector<fed::FedJobId> ids;
  for (int i = 0; i < 5; ++i) {
    auto spec = quick_job("c" + std::to_string(i), "d" + std::to_string(i));
    spec.quality = flow::FlowQuality::kCommercial;
    auto id = service.submit(std::move(spec));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  {
    const auto s = service.stats();
    EXPECT_EQ(s.commercial_inflight, 2u);
    EXPECT_EQ(s.quota_degraded, 3u);
    EXPECT_EQ(s.quota_rejected, 0u);
  }
  service.start();
  const auto records = service.drain();
  ASSERT_EQ(records.size(), 5u);
  int degraded = 0;
  for (const auto& r : records) {
    EXPECT_EQ(r.state, hub::JobState::kSucceeded);
    if (r.degraded) ++degraded;
  }
  EXPECT_EQ(degraded, 3);
  // Terminal jobs release their quota charge.
  EXPECT_EQ(service.stats().commercial_inflight, 0u);
}

TEST(FederationServiceTest, GlobalCommercialQuotaRejects) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.hub_options.start_paused = true;
  opts.steal = false;
  opts.max_commercial_inflight = 1;
  opts.quota_degrade = false;
  fed::FederatedService service(opts);

  auto first = quick_job("c0", "d0");
  first.quality = flow::FlowQuality::kCommercial;
  ASSERT_TRUE(service.submit(std::move(first)).ok());

  auto second = quick_job("c1", "d1");
  second.quality = flow::FlowQuality::kCommercial;
  const auto rejected = service.submit(std::move(second));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::ErrorCode::kResourceExhausted);

  // Open-effort work is never quota-gated.
  ASSERT_TRUE(service.submit(quick_job("open", "d2")).ok());
  EXPECT_EQ(service.stats().quota_rejected, 1u);
  service.start();
  (void)service.drain();
}

TEST(FederationServiceTest, RebalanceMovesQueuedWorkToIdlePeers) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.hub_options.capacity = 2;
  opts.hub_options.start_paused = true;
  opts.steal = false;  // drive rebalance_once by hand
  opts.steal_batch = 8;
  fed::FederatedService service(opts);

  // Same design => all 8 jobs shard to one hub; the other is idle.
  std::vector<fed::FedJobId> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = service.submit(quick_job("s" + std::to_string(i), "hot_design"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const std::size_t moved = service.rebalance_once();
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, 2u) << "steals must not exceed the recipient's idle slots";
  std::size_t queued_total = 0;
  std::size_t owners = 0;
  for (std::size_t h = 0; h < service.num_hubs(); ++h) {
    const auto q = service.hub(h).queued_count();
    queued_total += q;
    if (q > 0) ++owners;
  }
  EXPECT_EQ(queued_total, 8u) << "no job may be lost in migration";
  EXPECT_EQ(owners, 2u);

  service.start();
  for (const auto id : ids) {
    auto record = service.wait(id);
    ASSERT_TRUE(record.ok()) << record.status().to_string();
    EXPECT_EQ(record->state, hub::JobState::kSucceeded) << record->name;
  }
  EXPECT_EQ(service.stats().stolen, moved);
}

TEST(FederationServiceTest, WaitFollowsAMigratedJob) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.hub_options.capacity = 1;
  opts.hub_options.start_paused = true;
  opts.steal = false;
  fed::FederatedService service(opts);

  auto id = service.submit(quick_job("follow", "hot_design"));
  ASSERT_TRUE(id.ok());

  std::atomic<bool> done{false};
  std::thread waiter([&] {
    const auto record = service.wait(*id);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->state, hub::JobState::kSucceeded);
    done.store(true);
  });
  // Give the waiter time to block on the donor hub before migrating.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)service.rebalance_once();
  service.start();
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(FederationServiceTest, CancelRacingStealNeverLosesTheCancel) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.hub_options.capacity = 1;
  opts.hub_options.start_paused = true;
  opts.steal = false;
  opts.steal_batch = 16;
  fed::FederatedService service(opts);

  std::vector<fed::FedJobId> ids;
  for (int i = 0; i < 16; ++i) {
    auto id = service.submit(quick_job("r" + std::to_string(i), "hot_design"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Cancel everything while a thread migrates the queue between hubs. The
  // sticky cancel_requested flag must catch jobs mid-migration.
  std::thread stealer([&] {
    for (int round = 0; round < 4; ++round) (void)service.rebalance_once();
  });
  std::thread canceller([&] {
    for (const auto id : ids) (void)service.cancel(id);
  });
  stealer.join();
  canceller.join();
  service.start();
  for (const auto id : ids) {
    const auto record = service.wait(id);
    ASSERT_TRUE(record.ok()) << record.status().to_string();
    // Paused hubs: nothing ever ran, so every cancel must have landed —
    // possibly via the post-migration re-application.
    EXPECT_EQ(record->state, hub::JobState::kCancelled) << record->name;
  }
}

TEST(FederationServiceTest, FlowJobsAreBitIdenticalAcrossTopologies) {
  const auto run_once = [](std::size_t hubs, bool steal) {
    fed::FederatedService::Options opts;
    opts.hubs = hubs;
    opts.hub_options.capacity = 2;
    opts.steal = steal;
    opts.steal_interval_ms = 1.0;
    opts.l1_bytes = 32u << 20;
    fed::FederatedService service(opts);
    std::vector<util::Digest> digests;
    std::vector<fed::FedJobId> ids;
    for (int i = 0; i < 4; ++i) {
      auto design = std::make_shared<const rtl::Module>(
          rtl::designs::counter(4 + (i % 2)));
      auto spec = hub::make_flow_job("flow" + std::to_string(i), design,
                                     open_config(31 + (i % 2)));
      auto id = service.submit(std::move(spec));
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
    for (const auto id : ids) {
      auto record = service.wait(id);
      EXPECT_TRUE(record.ok());
      EXPECT_EQ(record->state, hub::JobState::kSucceeded);
      digests.push_back(record->artifact_digest);
    }
    return digests;
  };
  const auto one = run_once(1, false);
  const auto four = run_once(4, true);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << "job " << i
                               << " result depends on federation topology";
  }
}

}  // namespace
}  // namespace eurochip
