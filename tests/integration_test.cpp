// Cross-artifact integration tests: the four exchange views of one design
// (Verilog netlist, DEF placement, Liberty library, GDSII layout) must
// agree with each other and with the in-memory model — the consistency an
// enablement platform needs before accepting a submission.
#include <gtest/gtest.h>

#include "eurochip/core/campaign.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/gds/gds.hpp"
#include "eurochip/netlist/liberty.hpp"
#include "eurochip/netlist/verilog.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/def.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/rtl/hls.hpp"

namespace eurochip {
namespace {

flow::FlowConfig cfg_for(const char* node) {
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node(node).value();
  return cfg;
}

TEST(IntegrationTest, AllExchangeViewsAgree) {
  const auto m = rtl::designs::alu(8);
  const auto result = flow::run_reference_flow(m, cfg_for("sky130ish"));
  ASSERT_TRUE(result.ok());
  const auto& a = result->artifacts;

  // Verilog instances == netlist cells == DEF components.
  const auto verilog =
      netlist::read_verilog_summary(netlist::write_verilog(*a.mapped));
  const auto def = place::read_def_summary(place::write_def(*a.placed));
  ASSERT_TRUE(verilog.ok());
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(verilog->num_instances, a.mapped->num_cells());
  EXPECT_EQ(def->num_components, a.mapped->num_cells());

  // GDSII cell rectangles == netlist cells; die box == DEF die box.
  const auto gds_lib = gds::read(a.gds_bytes);
  ASSERT_TRUE(gds_lib.ok());
  std::size_t gds_cells = 0;
  for (const auto& b : gds_lib->structures[0].boundaries) {
    if (b.layer == gds::kLayerCells) ++gds_cells;
  }
  EXPECT_EQ(gds_cells, a.mapped->num_cells());
  EXPECT_EQ(def->die, a.placed->floorplan.die());

  // Liberty cells == library size; every instantiated cell type exists.
  const auto liberty =
      netlist::read_liberty_summary(netlist::write_liberty(*a.library));
  ASSERT_TRUE(liberty.ok());
  EXPECT_EQ(liberty->num_cells, a.library->size());
  for (netlist::CellId id : a.mapped->all_cells()) {
    EXPECT_TRUE(a.library->find(a.mapped->lib_cell(id).name).ok());
  }
}

TEST(IntegrationTest, HlsToCampaignEndToEnd) {
  // The full Recommendation pipeline: HLS program -> hub campaign.
  rtl::hls::Program prog("edge_detect", 8);
  const auto x = prog.input("x");
  const auto d = prog.delay(x, 1);
  prog.output("edge", prog.abs_diff(x, d));
  const auto module = prog.compile();
  ASSERT_TRUE(module.ok());

  core::EnablementHub hub(pdk::standard_registry(), {});
  ASSERT_TRUE(hub.enable_technology("ihp130ish").ok());
  core::UniversityProfile uni;
  const std::size_t member = hub.add_member(uni);
  core::CampaignConfig cfg;
  cfg.node_name = "ihp130ish";
  cfg.tier = edu::LearnerTier::kIntermediate;
  const auto report = core::run_campaign(hub, member, *module, cfg);
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GT(report->ppa.cell_count, 0u);
  EXPECT_EQ(report->ppa.drc_violations, 0u);
}

TEST(IntegrationTest, ScanPlusBufferingPlusFlowStayConsistent) {
  // Commercial preset (buffering + sizing) with scan insertion: the layout
  // views must still agree after all netlist surgery.
  const auto m = rtl::designs::fir_filter(8, 4);
  flow::FlowConfig cfg = cfg_for("sky130ish");
  cfg.quality = flow::FlowQuality::kCommercial;
  cfg.insert_scan = true;
  const auto result = flow::run_reference_flow(m, cfg);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const auto& a = result->artifacts;
  EXPECT_TRUE(a.mapped->check().ok());
  const auto def = place::read_def_summary(place::write_def(*a.placed));
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->num_components, a.mapped->num_cells());
  EXPECT_TRUE(def->all_placed);
  EXPECT_EQ(result->ppa.drc_violations, 0u);
}

TEST(IntegrationTest, SameSeedSameGds) {
  // Full-flow determinism: byte-identical GDSII across runs.
  const auto m = rtl::designs::mini_cpu_datapath(8);
  const auto r1 = flow::run_reference_flow(m, cfg_for("sky130ish"));
  const auto r2 = flow::run_reference_flow(m, cfg_for("sky130ish"));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->artifacts.gds_bytes, r2->artifacts.gds_bytes);
}

TEST(IntegrationTest, DifferentSeedsDifferentPlacementSameFunction) {
  const auto m = rtl::designs::alu(8);
  flow::FlowConfig c1 = cfg_for("sky130ish");
  flow::FlowConfig c2 = cfg_for("sky130ish");
  c2.seed = 999;
  const auto r1 = flow::run_reference_flow(m, c1);
  const auto r2 = flow::run_reference_flow(m, c2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Same logical netlist, different layout.
  EXPECT_EQ(r1->ppa.cell_count, r2->ppa.cell_count);
  EXPECT_NE(r1->artifacts.placed->total_hpwl(),
            r2->artifacts.placed->total_hpwl());
  EXPECT_EQ(r1->ppa.drc_violations, 0u);
  EXPECT_EQ(r2->ppa.drc_violations, 0u);
}

}  // namespace
}  // namespace eurochip
