#include <gtest/gtest.h>

#include "eurochip/netlist/simulator.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"
#include "eurochip/synth/scan.hpp"

namespace eurochip::synth {
namespace {

struct Mapped {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
};

Mapped map_design(const rtl::Module& m) {
  Mapped d;
  d.node = pdk::standard_node("sky130ish").value();
  d.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(d.node));
  const auto aig = elaborate(m);
  auto mapped = map_to_library(optimize(*aig, 2), *d.lib);
  d.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  return d;
}

TEST(ScanTest, AddsPortsAndMuxes) {
  const auto m = rtl::designs::counter(8);
  Mapped d = map_design(m);
  const std::size_t flops = d.nl->sequential_cells().size();
  const std::size_t inputs_before = d.nl->inputs().size();
  ScanStats stats;
  ASSERT_TRUE(insert_scan_chain(*d.nl, *d.lib, &stats).ok());
  EXPECT_EQ(stats.flops_in_chain, flops);
  EXPECT_EQ(stats.muxes_added, flops);
  EXPECT_EQ(d.nl->inputs().size(), inputs_before + 2);  // scan_en, scan_in
  EXPECT_EQ(d.nl->outputs().back().name, "scan_out");
  EXPECT_TRUE(d.nl->check().ok());
}

TEST(ScanTest, FunctionalModeUnchanged) {
  const auto m = rtl::designs::counter(8);
  Mapped plain = map_design(m);
  Mapped scanned = map_design(m);
  ASSERT_TRUE(insert_scan_chain(*scanned.nl, *scanned.lib).ok());

  auto sim_plain = netlist::Simulator::create(*plain.nl);
  auto sim_scan = netlist::Simulator::create(*scanned.nl);
  ASSERT_TRUE(sim_plain.ok());
  ASSERT_TRUE(sim_scan.ok());
  sim_plain->reset();
  sim_scan->reset();
  for (int c = 0; c < 30; ++c) {
    const bool en = c % 3 != 0;
    const auto a = sim_plain->step({en});
    // Scan inputs appended after functional inputs; scan_en = 0.
    auto b = sim_scan->step({en, false, false});
    // Ignore the extra scan_out bit at the end.
    b.pop_back();
    ASSERT_EQ(a, b) << "cycle " << c;
  }
}

TEST(ScanTest, ShiftModeMovesPatternThroughChain) {
  const auto m = rtl::designs::counter(4);
  Mapped d = map_design(m);
  ScanStats stats;
  ASSERT_TRUE(insert_scan_chain(*d.nl, *d.lib, &stats).ok());
  auto sim = netlist::Simulator::create(*d.nl);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  // Shift a known pattern in: after N cycles, scan_out starts replaying it.
  const std::vector<bool> pattern = {true, false, true, true};
  ASSERT_EQ(pattern.size(), stats.flops_in_chain);
  std::vector<bool> seen;
  // Input order: en, scan_en, scan_in.
  for (bool bit : pattern) {
    (void)sim->step({false, true, bit});
  }
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const auto out = sim->step({false, true, false});
    seen.push_back(out.back());
  }
  // The chain is FIFO: first bit shifted in emerges first.
  EXPECT_EQ(seen, pattern);
}

TEST(ScanTest, CombinationalDesignRejected) {
  const auto m = rtl::designs::adder(8);
  Mapped d = map_design(m);
  const auto s = insert_scan_chain(*d.nl, *d.lib);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::ErrorCode::kFailedPrecondition);
}

TEST(ScanTest, WorksOnEveryNode) {
  const auto m = rtl::designs::lfsr(8);
  for (const char* node : {"gf180ish", "commercial28"}) {
    Mapped d;
    d.node = pdk::standard_node(node).value();
    d.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(d.node));
    const auto aig = elaborate(m);
    auto mapped = map_to_library(optimize(*aig, 1), *d.lib);
    d.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
    EXPECT_TRUE(insert_scan_chain(*d.nl, *d.lib).ok()) << node;
  }
}

}  // namespace
}  // namespace eurochip::synth
