#include <gtest/gtest.h>

#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/placer.hpp"
#include "eurochip/route/router.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::route {
namespace {

struct Physical {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
  std::unique_ptr<place::PlacedDesign> placed;
};

Physical make_physical(const rtl::Module& m,
                       const std::string& node_name = "sky130ish") {
  Physical p;
  p.node = pdk::standard_node(node_name).value();
  p.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(p.node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *p.lib);
  p.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  auto placed = place::place(*p.nl, p.node);
  p.placed = std::make_unique<place::PlacedDesign>(std::move(*placed));
  return p;
}

TEST(RouteTest, RoutesAllMultiPinNets) {
  const auto m = rtl::designs::alu(8);
  const Physical p = make_physical(m);
  RouteStats stats;
  const auto routed = route(*p.placed, p.node, {}, &stats);
  ASSERT_TRUE(routed.ok()) << routed.status().to_string();
  for (netlist::NetId id : p.nl->all_nets()) {
    const auto pins = p.placed->net_pins(id);
    if (pins.size() >= 2) {
      EXPECT_TRUE(routed->nets[id.value].routed) << p.nl->net(id).name;
    }
  }
  EXPECT_GT(routed->total_wirelength_dbu, 0);
  EXPECT_GT(stats.segments_routed, 0u);
}

TEST(RouteTest, WirelengthAtLeastLowerBoundedByGcellScale) {
  // Routed length, measured in gcells, cannot beat the HPWL lower bound by
  // more than the gcell quantization allows.
  const auto m = rtl::designs::mini_cpu_datapath(8);
  const Physical p = make_physical(m);
  const auto routed = route(*p.placed, p.node);
  ASSERT_TRUE(routed.ok());
  // Sanity: total routed wirelength within [0.2x, 50x] of HPWL.
  const double hpwl = static_cast<double>(p.placed->total_hpwl());
  const double wl = static_cast<double>(routed->total_wirelength_dbu);
  EXPECT_GT(wl, hpwl * 0.2);
  EXPECT_LT(wl, hpwl * 50.0);
}

TEST(RouteTest, CongestionAwareReducesOverflow) {
  const auto m = rtl::designs::mini_cpu_datapath(12);
  const Physical p = make_physical(m);
  RouteOptions naive;
  naive.congestion_aware = false;
  naive.max_ripup_iterations = 0;
  naive.gcell_pitches = 15;  // small gcells -> scarce capacity
  RouteOptions aware;
  aware.congestion_aware = true;
  aware.gcell_pitches = 15;
  const auto r_naive = route(*p.placed, p.node, naive);
  const auto r_aware = route(*p.placed, p.node, aware);
  if (r_naive.ok() && r_aware.ok()) {
    EXPECT_LE(r_aware->overflowed_edges, r_naive->overflowed_edges);
  } else {
    // The naive router may fail outright; congestion-aware must not fail
    // if naive succeeded.
    EXPECT_TRUE(r_aware.ok() || !r_naive.ok());
  }
}

TEST(RouteTest, DeterministicResult) {
  const auto m = rtl::designs::fir_filter(8, 4);
  const Physical p = make_physical(m);
  const auto a = route(*p.placed, p.node);
  const auto b = route(*p.placed, p.node);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_wirelength_dbu, b->total_wirelength_dbu);
  EXPECT_EQ(a->total_vias, b->total_vias);
}

TEST(RouteTest, NetLengthAccessor) {
  const auto m = rtl::designs::counter(8);
  const Physical p = make_physical(m);
  const auto routed = route(*p.placed, p.node);
  ASSERT_TRUE(routed.ok());
  double sum_um = 0.0;
  for (netlist::NetId id : p.nl->all_nets()) {
    sum_um += routed->net_length_um(id);
  }
  EXPECT_NEAR(sum_um * 1e3,
              static_cast<double>(routed->total_wirelength_dbu), 1.0);
}

TEST(RouteTest, ViasTrackBends) {
  const auto m = rtl::designs::alu(8);
  const Physical p = make_physical(m);
  const auto routed = route(*p.placed, p.node);
  ASSERT_TRUE(routed.ok());
  EXPECT_GT(routed->total_vias, 0);
}

TEST(RouteTest, GridDimensionsReported) {
  const auto m = rtl::designs::counter(8);
  const Physical p = make_physical(m);
  RouteStats stats;
  ASSERT_TRUE(route(*p.placed, p.node, {}, &stats).ok());
  EXPECT_GT(stats.grid_width, 0);
  EXPECT_GT(stats.grid_height, 0);
  EXPECT_GT(stats.edge_capacity, 0);
}

}  // namespace
}  // namespace eurochip::route
