#include <gtest/gtest.h>

#include <cstdio>

#include "eurochip/drc/checker.hpp"
#include "eurochip/gds/gds.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/placer.hpp"
#include "eurochip/route/router.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip {
namespace {

struct Physical {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
  std::unique_ptr<place::PlacedDesign> placed;
};

Physical make_physical(const rtl::Module& m) {
  Physical p;
  p.node = pdk::standard_node("sky130ish").value();
  p.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(p.node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *p.lib);
  p.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  auto placed = place::place(*p.nl, p.node);
  p.placed = std::make_unique<place::PlacedDesign>(std::move(*placed));
  return p;
}

// --- DRC ---------------------------------------------------------------

TEST(DrcTest, CleanAfterLegalPlacement) {
  const auto m = rtl::designs::alu(8);
  const Physical p = make_physical(m);
  const auto report = drc::check(*p.placed, p.node);
  EXPECT_TRUE(report.clean()) << report.violations.size() << " violations, first: "
      << (report.violations.empty() ? "" : report.violations[0].detail);
  EXPECT_EQ(report.cells_checked, p.nl->num_cells());
}

TEST(DrcTest, DetectsInjectedOverlap) {
  const auto m = rtl::designs::counter(8);
  Physical p = make_physical(m);
  // Move cell 1 onto cell 0.
  p.placed->cell_origin[1] = p.placed->cell_origin[0];
  const auto report = drc::check(*p.placed, p.node);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.count(drc::ViolationKind::kOverlap), 1u);
}

TEST(DrcTest, DetectsOffRowAndOffSite) {
  const auto m = rtl::designs::counter(8);
  Physical p = make_physical(m);
  // Move a cell just above the bottom row: inside the core (the design has
  // several rows) but aligned to none.
  ASSERT_GE(p.placed->floorplan.rows().size(), 2u);
  p.placed->cell_origin[0].y = p.placed->floorplan.rows().front().y() + 13;
  p.placed->cell_origin[2].x += 1;  // off-site
  const auto report = drc::check(*p.placed, p.node);
  EXPECT_GE(report.count(drc::ViolationKind::kOffRow), 1u);
  EXPECT_GE(report.count(drc::ViolationKind::kOffSite), 1u);
}

TEST(DrcTest, DetectsOutsideCore) {
  const auto m = rtl::designs::counter(8);
  Physical p = make_physical(m);
  p.placed->cell_origin[0] = util::Point{-100000, -100000};
  const auto report = drc::check(*p.placed, p.node);
  EXPECT_GE(report.count(drc::ViolationKind::kOutsideCore), 1u);
}

TEST(DrcTest, ConnectivityCheckedWithRouting) {
  const auto m = rtl::designs::alu(8);
  const Physical p = make_physical(m);
  auto routed = route::route(*p.placed, p.node);
  ASSERT_TRUE(routed.ok());
  const auto report = drc::check(*p.placed, p.node, &*routed);
  EXPECT_GT(report.nets_checked, 0u);
  EXPECT_EQ(report.count(drc::ViolationKind::kUnrouted), 0u);
}

TEST(DrcTest, ViolationKindNames) {
  EXPECT_STREQ(drc::to_string(drc::ViolationKind::kOverlap), "overlap");
  EXPECT_STREQ(drc::to_string(drc::ViolationKind::kUnrouted), "unrouted");
}

// --- GDS ---------------------------------------------------------------

TEST(GdsTest, RoundTripPreservesStructure) {
  gds::Library lib;
  lib.name = "TESTLIB";
  gds::Structure s;
  s.name = "TOP";
  s.boundaries.push_back(
      gds::Boundary::from_rect(1, util::Rect{0, 0, 100, 200}));
  s.boundaries.push_back(
      gds::Boundary::from_rect(2, util::Rect{-50, -60, 70, 80}));
  lib.structures.push_back(s);

  const auto bytes = gds::write(lib);
  const auto parsed = gds::read(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->name, "TESTLIB");
  ASSERT_EQ(parsed->structures.size(), 1u);
  EXPECT_EQ(parsed->structures[0].name, "TOP");
  ASSERT_EQ(parsed->structures[0].boundaries.size(), 2u);
  EXPECT_EQ(parsed->structures[0].boundaries[0].layer, 1);
  EXPECT_EQ(parsed->structures[0].boundaries[0].points,
            s.boundaries[0].points);
  EXPECT_EQ(parsed->structures[0].boundaries[1].points,
            s.boundaries[1].points);
}

TEST(GdsTest, RoundTripByteExact) {
  gds::Library lib;
  gds::Structure s;
  s.name = "X";
  s.boundaries.push_back(gds::Boundary::from_rect(1, {0, 0, 10, 10}));
  lib.structures.push_back(s);
  const auto bytes1 = gds::write(lib);
  const auto parsed = gds::read(bytes1);
  ASSERT_TRUE(parsed.ok());
  const auto bytes2 = gds::write(*parsed);
  EXPECT_EQ(bytes1, bytes2);
}

TEST(GdsTest, UnitsSurviveRoundTrip) {
  gds::Library lib;
  const auto parsed = gds::read(gds::write(lib));
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed->user_unit, 1e-3, 1e-12);
  EXPECT_NEAR(parsed->meters_per_dbu, 1e-9, 1e-18);
}

TEST(GdsTest, StreamStartsWithHeaderRecord) {
  gds::Library lib;
  const auto bytes = gds::write(lib);
  ASSERT_GE(bytes.size(), 6u);
  EXPECT_EQ(bytes[2], 0x00);  // HEADER
  EXPECT_EQ(bytes[3], 0x02);  // int16
  EXPECT_EQ((bytes[4] << 8) | bytes[5], 600);
}

TEST(GdsTest, RejectsCorruptStream) {
  gds::Library lib;
  auto bytes = gds::write(lib);
  bytes.pop_back();
  bytes.pop_back();  // chop ENDLIB body
  EXPECT_FALSE(gds::read(bytes).ok());
  std::vector<std::uint8_t> garbage = {0x00, 0x08, 0x77, 0x00, 1, 2, 3, 4};
  EXPECT_FALSE(gds::read(garbage).ok());
}

TEST(GdsTest, LayoutExportContainsAllCells) {
  const auto m = rtl::designs::counter(8);
  const Physical p = make_physical(m);
  const gds::Library lib = gds::layout_to_gds(*p.placed, "counter");
  ASSERT_EQ(lib.structures.size(), 1u);
  std::size_t cell_rects = 0;
  for (const auto& b : lib.structures[0].boundaries) {
    if (b.layer == gds::kLayerCells) ++cell_rects;
  }
  EXPECT_EQ(cell_rects, p.nl->num_cells());
  // Round-trip the whole layout.
  const auto parsed = gds::read(gds::write(lib));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->structures[0].boundaries.size(),
            lib.structures[0].boundaries.size());
}

TEST(GdsTest, WriteFileCreatesNonEmptyFile) {
  gds::Library lib;
  gds::Structure s;
  s.name = "F";
  s.boundaries.push_back(gds::Boundary::from_rect(1, {0, 0, 5, 5}));
  lib.structures.push_back(s);
  const std::string path = "/tmp/eurochip_test.gds";
  ASSERT_TRUE(gds::write_file(lib, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eurochip
