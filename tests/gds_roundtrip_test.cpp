// Round-trip tests for the GDSII edge cases the writer historically got
// wrong: boundaries too large for one XY record (the u16 record length
// wrapped), real8 values outside the excess-64 exponent range (the
// exponent wrapped), and odd-length strings (padding).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "eurochip/gds/gds.hpp"

namespace eurochip {
namespace {

// Walks the record framing of a GDSII stream; returns false on any
// inconsistency. Every record length must be >= 4, even, and in-bounds.
bool framing_ok(const std::vector<std::uint8_t>& bytes,
                std::size_t* max_record_len = nullptr) {
  std::size_t pos = 0;
  std::size_t max_len = 0;
  while (pos + 4 <= bytes.size()) {
    const std::size_t len = (bytes[pos] << 8) | bytes[pos + 1];
    if (len < 4 || len % 2 != 0 || pos + len > bytes.size()) return false;
    max_len = std::max(max_len, len);
    const std::uint8_t rec = bytes[pos + 2];
    pos += len;
    if (rec == 0x04) {  // ENDLIB
      if (max_record_len != nullptr) *max_record_len = max_len;
      return pos == bytes.size();
    }
  }
  return false;
}

// Counts records of a given type in the stream.
std::size_t count_records(const std::vector<std::uint8_t>& bytes,
                          std::uint8_t rec_type) {
  std::size_t pos = 0, count = 0;
  while (pos + 4 <= bytes.size()) {
    const std::size_t len = (bytes[pos] << 8) | bytes[pos + 1];
    if (len < 4 || pos + len > bytes.size()) break;
    if (bytes[pos + 2] == rec_type) ++count;
    pos += len;
  }
  return count;
}

gds::Boundary big_polygon(std::size_t num_points) {
  gds::Boundary b;
  b.layer = 7;
  // A long zig-zag: distinct consecutive points, no accidental closure.
  for (std::size_t i = 0; i < num_points; ++i) {
    b.points.push_back({static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(i % 2 == 0 ? 0 : 100)});
  }
  return b;
}

TEST(GdsRoundTripTest, LargeBoundarySplitsIntoMultipleXyRecords) {
  // 8190 points fit one XY record only without the closing point; with it
  // the writer must split. Use 20000 to force three chunks.
  constexpr std::size_t kPoints = 20000;
  gds::Library lib;
  gds::Structure s;
  s.name = "BIG";
  s.boundaries.push_back(big_polygon(kPoints));
  lib.structures.push_back(s);

  const auto bytes = gds::write(lib);
  std::size_t max_len = 0;
  ASSERT_TRUE(framing_ok(bytes, &max_len));
  EXPECT_LE(max_len, 65534u);
  // (20000 + 1 closing) * 8 bytes = 160008 -> at least 3 XY records.
  EXPECT_GE(count_records(bytes, 0x10), 3u);

  const auto parsed = gds::read(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->structures.size(), 1u);
  ASSERT_EQ(parsed->structures[0].boundaries.size(), 1u);
  EXPECT_EQ(parsed->structures[0].boundaries[0].points,
            lib.structures[0].boundaries[0].points);
}

TEST(GdsRoundTripTest, ExactlyMaxPointsStaysSingleRecord) {
  // 8190 points + 1 closing point = 8191 = the single-record maximum
  // (8191 * 8 = 65528 payload bytes <= 65530).
  gds::Library lib;
  gds::Structure s;
  s.name = "EDGE";
  s.boundaries.push_back(big_polygon(8190));
  lib.structures.push_back(s);
  const auto bytes = gds::write(lib);
  ASSERT_TRUE(framing_ok(bytes));
  EXPECT_EQ(count_records(bytes, 0x10), 1u);
  const auto parsed = gds::read(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->structures[0].boundaries[0].points.size(), 8190u);
}

TEST(GdsRoundTripTest, SplitBoundaryChunkBoundaryDoesNotTruncatePoints) {
  // One past the single-record maximum: 8191 points + closing = 8192,
  // split as 8191 + 1. The 1-point tail must survive, and the closing
  // point must still be dropped exactly once.
  gds::Library lib;
  gds::Structure s;
  s.name = "SPLIT1";
  s.boundaries.push_back(big_polygon(8191));
  lib.structures.push_back(s);
  const auto bytes = gds::write(lib);
  ASSERT_TRUE(framing_ok(bytes));
  EXPECT_EQ(count_records(bytes, 0x10), 2u);
  const auto parsed = gds::read(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->structures[0].boundaries[0].points,
            lib.structures[0].boundaries[0].points);
}

TEST(GdsRoundTripTest, MixedSmallAndLargeBoundaries) {
  gds::Library lib;
  gds::Structure s;
  s.name = "MIX";
  s.boundaries.push_back(gds::Boundary::from_rect(1, {0, 0, 10, 10}));
  s.boundaries.push_back(big_polygon(9001));
  s.boundaries.push_back(gds::Boundary::from_rect(2, {-5, -5, 5, 5}));
  lib.structures.push_back(s);
  const auto bytes = gds::write(lib);
  ASSERT_TRUE(framing_ok(bytes));
  const auto parsed = gds::read(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->structures[0].boundaries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed->structures[0].boundaries[i].points,
              lib.structures[0].boundaries[i].points)
        << "boundary " << i;
  }
}

// --- real8 edge cases (via the UNITS record) ---------------------------

double round_trip_user_unit(double v) {
  gds::Library lib;
  lib.user_unit = v;
  const auto parsed = gds::read(gds::write(lib));
  EXPECT_TRUE(parsed.ok());
  return parsed.ok() ? parsed->user_unit : std::nan("");
}

TEST(GdsRoundTripTest, Real8NormalValuesAreExactWithinMantissa) {
  for (const double v : {1.0, -1.0, 1e-3, 0.5, 3.14159265358979,
                         1024.0, 6.25e-2, 1e-9, 123456789.0}) {
    const double got = round_trip_user_unit(v);
    EXPECT_NEAR(got, v, std::abs(v) * 1e-12) << "v=" << v;
  }
}

TEST(GdsRoundTripTest, Real8OverflowSaturatesInsteadOfWrapping) {
  // 1e80 exceeds the excess-64 range (max ~7.237e75). The old writer
  // wrapped the exponent, silently producing a tiny number; now it must
  // saturate near the format maximum, preserving sign and magnitude order.
  const double max_real8 = (1.0 - std::pow(2.0, -56)) * std::pow(16.0, 63);
  const double got = round_trip_user_unit(1e80);
  EXPECT_GT(got, 1e75);
  EXPECT_NEAR(got, max_real8, max_real8 * 1e-12);

  const double neg = round_trip_user_unit(-1e80);
  EXPECT_LT(neg, -1e75);
  EXPECT_NEAR(neg, -max_real8, max_real8 * 1e-12);
}

TEST(GdsRoundTripTest, Real8InfinitySaturates) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_GT(round_trip_user_unit(inf), 1e75);
  EXPECT_LT(round_trip_user_unit(-inf), -1e75);
}

TEST(GdsRoundTripTest, Real8UnderflowFlushesToZero) {
  // 1e-80 is below the smallest representable magnitude (~16^-65).
  EXPECT_EQ(round_trip_user_unit(1e-80), 0.0);
  EXPECT_EQ(round_trip_user_unit(-1e-80), 0.0);
}

TEST(GdsRoundTripTest, Real8NanEncodesAsZero) {
  EXPECT_EQ(round_trip_user_unit(std::nan("")), 0.0);
}

TEST(GdsRoundTripTest, Real8ExtremesKeepFramingValid) {
  gds::Library lib;
  lib.user_unit = 1e80;
  lib.meters_per_dbu = 1e-80;
  const auto bytes = gds::write(lib);
  EXPECT_TRUE(framing_ok(bytes));
}

// --- string padding ----------------------------------------------------

TEST(GdsRoundTripTest, OddLengthNamesRoundTrip) {
  gds::Library lib;
  lib.name = "ODD";  // 3 chars -> padded to 4
  gds::Structure s;
  s.name = "ALSO_ODD1";  // 9 chars -> padded to 10
  s.boundaries.push_back(gds::Boundary::from_rect(1, {0, 0, 1, 1}));
  lib.structures.push_back(s);
  const auto bytes = gds::write(lib);
  ASSERT_TRUE(framing_ok(bytes));
  const auto parsed = gds::read(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "ODD");
  EXPECT_EQ(parsed->structures[0].name, "ALSO_ODD1");
}

TEST(GdsRoundTripTest, LargeBoundaryByteExactSecondPass) {
  // write -> read -> write must be byte-identical even with split records.
  gds::Library lib;
  gds::Structure s;
  s.name = "STABLE";
  s.boundaries.push_back(big_polygon(10000));
  lib.structures.push_back(s);
  const auto bytes1 = gds::write(lib);
  const auto parsed = gds::read(bytes1);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(bytes1, gds::write(*parsed));
}

}  // namespace
}  // namespace eurochip
