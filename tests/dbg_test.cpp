// Design-debug provenance (eurochip::dbg): the SymbolTable recorded by the
// reference flow, the query API ("where did my adder go?"), serialize v3
// snapshot stability, cache-backed answers, and flight-record rendering.
//
// The acceptance design is mul16 (rtl::designs::multiplier(16)): every RTL
// port and named signal — a, b, p_q, p — must round-trip through where_is()
// to a mapped net, a placed location, and a routed net, at 1 and 8 flow
// threads, with artifacts bit-identical across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "eurochip/dbg/debug.hpp"
#include "eurochip/dbg/symbols.hpp"
#include "eurochip/flow/cache.hpp"
#include "eurochip/flow/fingerprint.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/flow/serialize.hpp"
#include "eurochip/hub/job.hpp"
#include "eurochip/netlist/verilog.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/wire.hpp"

namespace eurochip {
namespace {

// mul16 is the largest stock design that routes at commercial defaults
// (bench_flow_scaling uses the same pairing); the open preset congests.
flow::FlowConfig mul_config(int threads) {
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("commercial28").value();
  cfg.quality = flow::FlowQuality::kCommercial;
  cfg.seed = 16;
  cfg.threads = threads;
  return cfg;
}

// One mul16 reference-flow run (threads = 1), shared by every test that
// only inspects the result.
struct Baked {
  std::unique_ptr<rtl::Module> design;
  flow::FlowContext ctx;
};

const Baked& baked() {
  static const Baked* b = [] {
    auto* out = new Baked;
    out->design =
        std::make_unique<rtl::Module>(rtl::designs::multiplier(16));
    const auto cfg = mul_config(1);
    auto res = flow::run_reference_flow(*out->design, cfg);
    if (!res.ok()) {
      ADD_FAILURE() << "reference flow failed: " << res.status().to_string();
    } else {
      out->ctx.config = cfg;
      out->ctx.artifacts = std::move(res->artifacts);
      out->ctx.steps = std::move(res->steps);
    }
    out->ctx.artifacts.design = out->design.get();
    return out;
  }();
  return *b;
}

struct NamedSignal {
  const char* name;
  const char* kind;  // BitLocation::kind rendering
  int width;
};

// Every port and named signal of mul16: a/b inputs, p_q product register,
// p output.
const NamedSignal kMul16Signals[] = {
    {"a", "input", 16},
    {"b", "input", 16},
    {"p_q", "reg", 32},
    {"p", "output", 32},
};

// --- symbol table shape ----------------------------------------------------

TEST(DbgSymbolsTest, TableCoversEveryStageAndMatchesTheFinalNetlist) {
  const auto& a = baked().ctx.artifacts;
  ASSERT_NE(a.symbols, nullptr);
  const auto& sym = *a.symbols;

  EXPECT_TRUE(sym.has(dbg::kStageElab));
  EXPECT_TRUE(sym.has(dbg::kStageMap));
  EXPECT_TRUE(sym.has(dbg::kStageNames));
  EXPECT_TRUE(sym.has(dbg::kStageSta));

  ASSERT_NE(a.mapped, nullptr);
  const std::size_t cells = a.mapped->num_cells();
  const std::size_t nets = a.mapped->num_nets();
  EXPECT_EQ(sym.cell_origin.size(), cells);
  EXPECT_EQ(sym.instance_names.size(), cells);
  EXPECT_EQ(sym.net_names.size(), nets);
  EXPECT_EQ(sym.arrival_ps.size(), nets);
  EXPECT_EQ(sym.arrival_min_ps.size(), nets);
  EXPECT_EQ(sym.net_driven.size(), nets);

  EXPECT_EQ(sym.rtl_signals.size(), 4u);
  for (const auto& s : kMul16Signals) {
    const auto* decl = sym.find_rtl_signal(s.name);
    ASSERT_NE(decl, nullptr) << s.name;
    EXPECT_EQ(decl->width, s.width) << s.name;
  }
  EXPECT_EQ(sym.find_rtl_signal("no_such_signal"), nullptr);

  // The frozen names are the verilog writer's spelling — what a student
  // sees in the netlist dump.
  const auto names = netlist::verilog_names(*a.mapped);
  EXPECT_EQ(sym.sv(sym.module_name), names.module_name);
  ASSERT_EQ(sym.instance_names.size(), names.instance_names.size());
  for (std::size_t i = 0; i < names.instance_names.size(); ++i) {
    EXPECT_EQ(sym.sv(sym.instance_names[i]), names.instance_names[i]);
  }

  // Bit bindings: one per bit of every named signal, ascending bit order.
  const auto pq = sym.find_bits("p_q");
  ASSERT_EQ(pq.size(), 32u);
  EXPECT_EQ(sym.sv(pq[0]->name), "p_q[0]");
  EXPECT_EQ(sym.sv(pq[31]->name), "p_q[31]");
  for (const auto* bit : pq) {
    EXPECT_EQ(bit->kind, dbg::SymbolTable::BitKind::kReg);
    EXPECT_NE(bit->cell.value, netlist::CellId::kInvalid);
  }
}

// --- where_is round trip ---------------------------------------------------

void expect_where_is_round_trips(const flow::FlowContext& ctx) {
  for (const auto& s : kMul16Signals) {
    const auto r = dbg::answer(dbg::Query::where_is(s.name), ctx);
    ASSERT_TRUE(r.found) << s.name << ": " << r.text;
    EXPECT_EQ(r.where_is.rtl_name, s.name);
    EXPECT_EQ(r.where_is.declared_width, s.width) << s.name;
    ASSERT_EQ(r.where_is.bits.size(), static_cast<std::size_t>(s.width))
        << s.name;
    for (const auto& bit : r.where_is.bits) {
      EXPECT_EQ(bit.kind, s.kind) << bit.bit_name;
      EXPECT_NE(bit.net, netlist::NetId::kInvalid) << bit.bit_name;
      EXPECT_TRUE(bit.placed) << bit.bit_name;
      EXPECT_TRUE(bit.routed) << bit.bit_name;
      if (std::string(s.kind) == "reg") {
        EXPECT_NE(bit.cell, netlist::CellId::kInvalid) << bit.bit_name;
        EXPECT_FALSE(bit.cell_name.empty()) << bit.bit_name;
        EXPECT_TRUE(bit.timed) << bit.bit_name;
        EXPECT_GE(bit.arrival_ps, 0.0) << bit.bit_name;
      }
      if (std::string(s.kind) == "output") {
        EXPECT_TRUE(bit.timed) << bit.bit_name;
        EXPECT_GT(bit.arrival_ps, 0.0) << bit.bit_name;
      }
    }
  }
  // Unknown names answer found=false with an explanation, not an error.
  const auto miss = dbg::answer(dbg::Query::where_is("carry_out"), ctx);
  EXPECT_FALSE(miss.found);
  EXPECT_FALSE(miss.text.empty());
}

TEST(DbgWhereIsTest, RoundTripsEveryNamedSignalOfMul16) {
  expect_where_is_round_trips(baked().ctx);
}

TEST(DbgWhereIsTest, EightThreadRunIsBitIdenticalAndAnswersTheSame) {
  const auto& b = baked();
  auto res = flow::run_reference_flow(*b.design, mul_config(8));
  ASSERT_TRUE(res.ok()) << res.status().to_string();

  // Artifacts are bit-identical at any thread count — the symbol overlay
  // must not break that.
  ASSERT_NE(res->artifacts.mapped, nullptr);
  EXPECT_TRUE(flow::digest_of(*res->artifacts.mapped) ==
              flow::digest_of(*b.ctx.artifacts.mapped));
  EXPECT_TRUE(flow::digest_of(*res->artifacts.placed) ==
              flow::digest_of(*b.ctx.artifacts.placed));
  EXPECT_TRUE(flow::digest_of(*res->artifacts.routed) ==
              flow::digest_of(*b.ctx.artifacts.routed));

  flow::FlowContext ctx;
  ctx.config = mul_config(8);
  ctx.artifacts = std::move(res->artifacts);
  ctx.artifacts.design = b.design.get();
  expect_where_is_round_trips(ctx);

  // Spot-check that the answers agree bit for bit across thread counts.
  const auto one = dbg::answer(dbg::Query::where_is("p_q"), b.ctx);
  const auto eight = dbg::answer(dbg::Query::where_is("p_q"), ctx);
  ASSERT_EQ(one.where_is.bits.size(), eight.where_is.bits.size());
  for (std::size_t i = 0; i < one.where_is.bits.size(); ++i) {
    EXPECT_EQ(one.where_is.bits[i].x, eight.where_is.bits[i].x) << i;
    EXPECT_EQ(one.where_is.bits[i].y, eight.where_is.bits[i].y) << i;
    EXPECT_EQ(one.where_is.bits[i].wirelength_dbu,
              eight.where_is.bits[i].wirelength_dbu)
        << i;
  }
}

// --- why_slack -------------------------------------------------------------

TEST(DbgWhySlackTest, WorstEndpointCarriesTheCriticalPath) {
  const auto r = dbg::answer(dbg::Query::why_slack(), baked().ctx);
  ASSERT_TRUE(r.found) << r.text;
  EXPECT_FALSE(r.why_slack.endpoint.empty());
  EXPECT_TRUE(r.why_slack.is_critical);
  EXPECT_FALSE(r.why_slack.path.empty());
  EXPECT_NEAR(r.why_slack.slack_ps,
              r.why_slack.required_ps - r.why_slack.arrival_ps, 1e-6);
  EXPECT_NEAR(r.why_slack.slack_ps, baked().ctx.artifacts.timing.wns_ps,
              1e-6);

  const auto miss =
      dbg::answer(dbg::Query::why_slack("no_such_endpoint"), baked().ctx);
  EXPECT_FALSE(miss.found);
}

// --- net_route geometry ----------------------------------------------------

TEST(DbgNetRouteTest, WaypointGeometryReproducesEveryNetsWirelength) {
  const auto& routed = *baked().ctx.artifacts.routed;
  ASSERT_GT(routed.gcell_dbu, 0);
  std::size_t checked = 0;
  for (const auto& net : routed.nets) {
    if (!net.routed) continue;
    ASSERT_GE(net.seg_begin.size(), 2u);
    ASSERT_EQ(net.seg_begin.front(), 0u);
    ASSERT_EQ(net.seg_begin.back(), net.waypoints.size());
    std::int64_t length = 0;
    for (std::size_t s = 0; s + 1 < net.seg_begin.size(); ++s) {
      const std::uint32_t lo = net.seg_begin[s];
      const std::uint32_t hi = net.seg_begin[s + 1];
      if (hi - lo < 2) {
        length += routed.gcell_dbu / 2;  // same-gcell connection
        continue;
      }
      for (std::uint32_t i = lo; i + 1 < hi; ++i) {
        const auto& p = net.waypoints[i];
        const auto& q = net.waypoints[i + 1];
        length += (std::abs(static_cast<std::int64_t>(q.x) - p.x) +
                   std::abs(static_cast<std::int64_t>(q.y) - p.y)) *
                  routed.gcell_dbu;
      }
    }
    EXPECT_EQ(length, net.wirelength_dbu) << "net " << net.net.value;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(DbgNetRouteTest, QueryResolvesAnRtlBitToItsGeometry) {
  const auto r = dbg::answer(dbg::Query::net_route("p_q[0]"), baked().ctx);
  ASSERT_TRUE(r.found) << r.text;
  EXPECT_NE(r.net_route.net, netlist::NetId::kInvalid);
  EXPECT_TRUE(r.net_route.is_routed);
  EXPECT_EQ(r.net_route.gcell_dbu, baked().ctx.artifacts.routed->gcell_dbu);
  EXPECT_FALSE(r.net_route.segments.empty());
  const auto& net = baked().ctx.artifacts.routed->nets.at(r.net_route.net);
  EXPECT_EQ(r.net_route.wirelength_dbu, net.wirelength_dbu);
  EXPECT_EQ(r.net_route.vias, net.vias);
}

// --- cone_of ---------------------------------------------------------------

TEST(DbgConeTest, OutputConeReachesThePrimaryInputs) {
  const auto r = dbg::answer(dbg::Query::cone_of("p[4]"), baked().ctx);
  ASSERT_TRUE(r.found) << r.text;
  EXPECT_FALSE(r.cone.cells.empty());
  EXPECT_FALSE(r.cone.inputs.empty());
  EXPECT_GE(r.cone.depth, 1u);
  for (const auto& in : r.cone.inputs) {
    EXPECT_TRUE(in.rfind("a[", 0) == 0 || in.rfind("b[", 0) == 0) << in;
  }
}

// --- serialize v3 ----------------------------------------------------------

template <typename T>
std::vector<std::uint8_t> bytes_of(const T& value) {
  util::WireWriter w;
  flow::serialize(w, value);
  return std::move(w).take();
}

TEST(DbgSerializeTest, SymbolTableRoundTripIsByteStable) {
  const auto& sym = *baked().ctx.artifacts.symbols;
  const auto bytes = bytes_of(sym);
  util::WireReader r(bytes);
  auto back = flow::deserialize_symbols(r);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->stage_mask, sym.stage_mask);
  EXPECT_EQ(back->arena(), sym.arena());
  EXPECT_EQ(back->bits.size(), sym.bits.size());
  EXPECT_EQ(back->arrival_ps, sym.arrival_ps);
  EXPECT_EQ(bytes_of(*back), bytes);  // re-encoding is the identity
}

TEST(DbgSerializeTest, SnapshotV3CarriesSymbolsAndStaysDigestStable) {
  const auto& b = baked();
  const auto bytes = flow::serialize_snapshot(b.ctx);

  flow::FlowContext restored;
  restored.config = b.ctx.config;
  restored.artifacts.design = b.design.get();
  const auto st = flow::deserialize_snapshot(bytes, restored);
  ASSERT_TRUE(st.ok()) << st.to_string();

  ASSERT_NE(restored.artifacts.symbols, nullptr);
  EXPECT_EQ(restored.artifacts.symbols->stage_mask,
            b.ctx.artifacts.symbols->stage_mask);
  EXPECT_TRUE(flow::digest_of(*restored.artifacts.routed) ==
              flow::digest_of(*b.ctx.artifacts.routed));

  // Digest-stable across save/load: re-serializing the restored context
  // yields the identical stream.
  EXPECT_EQ(flow::serialize_snapshot(restored), bytes);

  // The restored context answers queries like the live one.
  expect_where_is_round_trips(restored);
}

// --- cache-backed answers --------------------------------------------------

TEST(DbgCacheTest, AnswersFromTheDeepestCachedSnapshot) {
  const auto design = rtl::designs::multiplier(8);
  flow::FlowCache cache(flow::FlowCache::Options{.max_bytes = 256u << 20});
  auto cfg = mul_config(1);
  cfg.seed = 8;

  // Nothing resident yet: NotFound, not a crash.
  const auto cold =
      dbg::answer_from_cache(dbg::Query::where_is("p_q"), design, cfg, cache);
  EXPECT_FALSE(cold.ok());

  cfg.cache = &cache;
  auto run = flow::run_reference_flow(design, cfg);
  ASSERT_TRUE(run.ok()) << run.status().to_string();

  const auto warm =
      dbg::answer_from_cache(dbg::Query::where_is("p_q"), design, cfg, cache);
  ASSERT_TRUE(warm.ok()) << warm.status().to_string();
  ASSERT_TRUE(warm->found) << warm->text;
  ASSERT_EQ(warm->where_is.bits.size(), 16u);
  for (const auto& bit : warm->where_is.bits) {
    EXPECT_TRUE(bit.placed) << bit.bit_name;
    EXPECT_TRUE(bit.routed) << bit.bit_name;
  }

  const auto slack =
      dbg::answer_from_cache(dbg::Query::why_slack(), design, cfg, cache);
  ASSERT_TRUE(slack.ok()) << slack.status().to_string();
  EXPECT_TRUE(slack->found);
  EXPECT_FALSE(slack->why_slack.path.empty());
}

// --- flight record rendering ----------------------------------------------

TEST(DbgFlightTest, RenderSortsEntriesByTimestamp) {
  hub::JobRecord rec;
  rec.id = 7;
  rec.name = "out-of-order";
  rec.state = hub::JobState::kSucceeded;
  rec.flight = {
      {5.0, "step", "zeta", ""},
      {1.0, "submit", "alpha", ""},
      {3.0, "park", "beta", "flow parked at breakpoint"},
      {3.0, "resume", "gamma", "parked 1 ms"},  // stable: keeps park first
      {2.0, "start", "delta", ""},
  };
  const auto text = hub::render_flight_record(rec);
  const auto pos = [&](const char* label) {
    const auto p = text.find(label);
    EXPECT_NE(p, std::string::npos) << label << " missing:\n" << text;
    return p;
  };
  EXPECT_LT(pos("alpha"), pos("delta"));
  EXPECT_LT(pos("delta"), pos("beta"));
  EXPECT_LT(pos("beta"), pos("gamma"));  // equal t_ms: submission order
  EXPECT_LT(pos("gamma"), pos("zeta"));
}

}  // namespace
}  // namespace eurochip
