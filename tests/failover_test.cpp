// Availability layer of the federation (fed::HealthMonitor + the
// FederatedService failover/fencing/rejoin machinery): heartbeat-driven
// liveness under a fake clock (no sleeps for state transitions), crash
// failover with exactly-once settlement, zombie fencing across partitions,
// epoch-fenced restarts, gradual ring re-entry, and the chaos fault sites
// fed.hub.{crash,hang,partition}.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eurochip/fed/federation.hpp"
#include "eurochip/fed/health.hpp"
#include "eurochip/fed/router.hpp"
#include "eurochip/flow/cache.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/hub/job.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/clock.hpp"
#include "eurochip/util/fault.hpp"

namespace eurochip {
namespace {

// --- clock ----------------------------------------------------------------

TEST(FailoverClockTest, FakeClockAdvancesMonotonically) {
  util::FakeClock clock;
  EXPECT_EQ(clock.now_ms(), 0.0);
  clock.advance_ms(10.0);
  EXPECT_EQ(clock.now_ms(), 10.0);
  clock.advance_ms(-5.0);  // ignored: time never goes backwards
  EXPECT_EQ(clock.now_ms(), 10.0);
  clock.set_ms(7.0);  // ignored for the same reason
  EXPECT_EQ(clock.now_ms(), 10.0);
  clock.set_ms(25.0);
  EXPECT_EQ(clock.now_ms(), 25.0);
}

TEST(FailoverClockTest, SystemClockMovesForward) {
  util::Clock* clock = util::Clock::system();
  ASSERT_NE(clock, nullptr);
  const double a = clock->now_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(clock->now_ms(), a);
}

// --- health monitor (pure state machine, fully fake-time) -----------------

fed::HealthMonitor::Options fast_monitor() {
  fed::HealthMonitor::Options opts;
  opts.suspect_after_ms = 50.0;
  opts.down_after_ms = 150.0;
  opts.rejoin_beats = 3;
  return opts;
}

TEST(FailoverHealthTest, SilenceWalksUpSuspectDown) {
  fed::HealthMonitor m(2, fast_monitor(), 0.0);
  EXPECT_EQ(m.state(0), fed::HubHealth::kUp);

  // Hub 1 keeps beating; hub 0 goes silent.
  EXPECT_TRUE(m.observe(1, true, 60.0).empty());
  auto ts = m.tick(60.0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].hub, 0u);
  EXPECT_EQ(ts[0].to, fed::HubHealth::kSuspect);
  EXPECT_EQ(m.state(1), fed::HubHealth::kUp);

  EXPECT_TRUE(m.observe(1, true, 160.0).empty());
  ts = m.tick(160.0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].to, fed::HubHealth::kDown);
  EXPECT_EQ(m.state(0), fed::HubHealth::kDown);
  EXPECT_EQ(m.rejoin_progress(0), 0.0);
}

TEST(FailoverHealthTest, OneTickCanEmitSuspectThenDown) {
  fed::HealthMonitor m(1, fast_monitor(), 0.0);
  const auto ts = m.tick(500.0);  // slept through both thresholds
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].to, fed::HubHealth::kSuspect);
  EXPECT_EQ(ts[1].to, fed::HubHealth::kDown);
}

TEST(FailoverHealthTest, SuspectRecoversOnASingleBeat) {
  fed::HealthMonitor m(1, fast_monitor(), 0.0);
  (void)m.tick(60.0);
  ASSERT_EQ(m.state(0), fed::HubHealth::kSuspect);
  const auto ts = m.observe(0, true, 70.0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].to, fed::HubHealth::kUp);
}

TEST(FailoverHealthTest, RejoinRampCountsConsecutiveBeats) {
  fed::HealthMonitor m(1, fast_monitor(), 0.0);
  (void)m.tick(200.0);
  ASSERT_EQ(m.state(0), fed::HubHealth::kDown);

  auto ts = m.observe(0, true, 210.0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].to, fed::HubHealth::kRejoining);
  EXPECT_NEAR(m.rejoin_progress(0), 1.0 / 3.0, 1e-12);

  EXPECT_TRUE(m.observe(0, true, 220.0).empty());
  EXPECT_NEAR(m.rejoin_progress(0), 2.0 / 3.0, 1e-12);

  ts = m.observe(0, true, 230.0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].to, fed::HubHealth::kUp);
  EXPECT_EQ(m.rejoin_progress(0), 1.0);
}

TEST(FailoverHealthTest, RejoiningFallsBackToDownOnFailedBeat) {
  fed::HealthMonitor m(1, fast_monitor(), 0.0);
  (void)m.tick(200.0);
  (void)m.observe(0, true, 210.0);
  ASSERT_EQ(m.state(0), fed::HubHealth::kRejoining);
  const auto ts = m.observe(0, false, 220.0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].to, fed::HubHealth::kDown);
  EXPECT_EQ(m.rejoin_progress(0), 0.0);
}

// --- router masking -------------------------------------------------------

TEST(FailoverRouterTest, MaskedHubReceivesNothing) {
  fed::Router r(4);
  r.set_weight(2, 0.0);
  for (int i = 0; i < 300; ++i) {
    const auto key =
        fed::Router::shard_key("open90", "d" + std::to_string(i));
    EXPECT_NE(r.hub_for(key), 2u);
  }
}

TEST(FailoverRouterTest, RestoringWeightRestoresTheOriginalMapping) {
  fed::Router fresh(4), masked(4);
  masked.set_weight(1, 0.0);
  masked.set_weight(1, 1.0);
  for (int i = 0; i < 300; ++i) {
    const auto key =
        fed::Router::shard_key("open90", "d" + std::to_string(i));
    EXPECT_EQ(masked.hub_for(key), fresh.hub_for(key));
  }
}

TEST(FailoverRouterTest, PartialWeightShrinksTheShare) {
  fed::Router full(4), ramp(4);
  ramp.set_weight(0, 0.25);
  int full_share = 0, ramp_share = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto key =
        fed::Router::shard_key("open90", "d" + std::to_string(i));
    if (full.hub_for(key) == 0u) ++full_share;
    if (ramp.hub_for(key) == 0u) ++ramp_share;
  }
  EXPECT_GT(ramp_share, 0);
  EXPECT_LT(ramp_share, full_share);
}

TEST(FailoverRouterTest, TotalOutageStillRoutesSomewhere) {
  fed::Router r(3);
  for (std::size_t h = 0; h < 3; ++h) r.set_weight(h, 0.0);
  const auto key = fed::Router::shard_key("open90", "lonely");
  EXPECT_LT(r.hub_for(key), 3u);  // degraded, but never unroutable
}

// --- flow cache prefix probe ----------------------------------------------

flow::FlowConfig open_config(std::uint64_t seed) {
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.quality = flow::FlowQuality::kOpen;
  cfg.seed = seed;
  cfg.threads = 1;
  return cfg;
}

TEST(FailoverFlowProbeTest, CachedPrefixDepthSeesBothTiers) {
  const auto design = rtl::designs::counter(5);
  const auto tmpl = flow::reference_template();
  fed::RemoteCache remote;
  flow::FlowCache warm(flow::FlowCache::Options{.max_bytes = 64u << 20,
                                                .second_level = &remote});
  auto cfg = open_config(41);

  EXPECT_EQ(tmpl.cached_prefix_depth(design, cfg, warm), 0u);

  cfg.cache = &warm;
  const auto run = tmpl.execute(design, cfg);
  ASSERT_TRUE(run.ok()) << run.status().to_string();

  // Warm L1: the whole run is resumable.
  EXPECT_EQ(tmpl.cached_prefix_depth(design, cfg, warm),
            tmpl.steps().size());

  // Cold L1 over the same shared L2 — the failover shape: the probe must
  // count the remote tier, because that is what a re-homed job resumes
  // from on its new hub.
  flow::FlowCache cold(flow::FlowCache::Options{.max_bytes = 64u << 20,
                                                .second_level = &remote});
  EXPECT_EQ(tmpl.cached_prefix_depth(design, cfg, cold),
            tmpl.steps().size());

  // Cold L1, no L2: nothing to resume from.
  flow::FlowCache island(flow::FlowCache::Options{.max_bytes = 64u << 20});
  EXPECT_EQ(tmpl.cached_prefix_depth(design, cfg, island), 0u);

  // A different seed keys a different chain: the run is not fully
  // resumable (leading seed-independent stages may still match).
  auto other = open_config(42);
  EXPECT_LT(tmpl.cached_prefix_depth(design, other, warm),
            tmpl.steps().size());
}

// --- federated service under failures -------------------------------------

hub::JobSpec quick_job(const std::string& name, const std::string& design) {
  hub::JobSpec spec;
  spec.name = name;
  spec.design_name = design;
  spec.work = [](hub::JobContext&) { return util::Status::Ok(); };
  return spec;
}

// Blocks until `gate` opens, polling the cancel token (CancelToken has no
// wakeup hook; tests keep the poll interval tiny).
hub::JobSpec gated_job(const std::string& name, const std::string& design,
                       std::shared_ptr<std::atomic<bool>> gate) {
  hub::JobSpec spec;
  spec.name = name;
  spec.design_name = design;
  spec.work = [gate](hub::JobContext& ctx) {
    while (!gate->load(std::memory_order_acquire)) {
      if (ctx.cancel.cancelled()) {
        return util::Status::Cancelled("gated job cancelled");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return util::Status::Ok();
  };
  return spec;
}

std::size_t home_of(const fed::FederatedService& service,
                    const std::string& node, const std::string& design) {
  return service.router().hub_for(fed::Router::shard_key(node, design));
}

fed::FederatedService::Options chaos_opts(util::FakeClock* clock) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.steal = false;
  opts.health = false;  // heartbeat_once() driven by hand
  opts.clock = clock;
  opts.monitor = fast_monitor();
  opts.hub_options.capacity = 2;
  return opts;
}

TEST(FailoverServiceTest, CrashedHubsQueuedJobsFailOverVerbatim) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  opts.hub_options.start_paused = true;
  fed::FederatedService service(opts);

  const std::size_t home = home_of(service, "", "hot_design");
  const std::size_t other = 1 - home;
  std::vector<fed::FedJobId> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = service.submit(quick_job("q" + std::to_string(i), "hot_design"));
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(*id);
  }
  ASSERT_EQ(service.hub(home).queued_count(), 3u);

  service.crash_hub(home);
  // The dying hub's cancel storm must be black-holed, not settled.
  EXPECT_EQ(service.stats().crash_terminals_dropped, 3u);
  EXPECT_EQ(service.stats().completed, 0u);

  clock.advance_ms(200.0);
  const std::size_t transitions = service.heartbeat_once();
  EXPECT_GE(transitions, 2u);  // kUp -> kSuspect -> kDown
  EXPECT_EQ(service.health().state(home), fed::HubHealth::kDown);
  {
    const auto s = service.stats();
    EXPECT_EQ(s.hub_down_events, 1u);
    EXPECT_EQ(s.failed_over, 3u);
  }
  EXPECT_EQ(service.hub(other).queued_count(), 3u) << "jobs must re-home";

  service.start();
  for (const auto id : ids) {
    const auto record = service.wait_for(id, 10000.0);
    ASSERT_TRUE(record.ok()) << record.status().to_string();
    EXPECT_EQ(record->state, hub::JobState::kSucceeded) << record->name;
    EXPECT_EQ(record->failovers, 1);
    bool has_failover_entry = false;
    for (const auto& e : record->flight) {
      if (e.kind == "failover") {
        has_failover_entry = true;
        EXPECT_EQ(e.label, "hub-" + std::to_string(home) + " -> hub-" +
                               std::to_string(other));
      }
    }
    EXPECT_TRUE(has_failover_entry);
  }
  const auto s = service.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.duplicate_settlements, 0u);
}

TEST(FailoverServiceTest, SubmitReroutesOffACrashedUndetectedHub) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  fed::FederatedService service(opts);

  const std::size_t home = home_of(service, "", "doomed_design");
  service.crash_hub(home);
  // No heartbeat has run: the ring still points at the corpse. The
  // submission must walk to the survivor instead of failing.
  auto id = service.submit(quick_job("r0", "doomed_design"));
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  EXPECT_GE(service.stats().rerouted, 1u);
  const auto record = service.wait_for(*id, 10000.0);
  ASSERT_TRUE(record.ok()) << record.status().to_string();
  EXPECT_EQ(record->state, hub::JobState::kSucceeded);
}

TEST(FailoverServiceTest, FailoverResumesFromTheSharedCachePrefix) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  fed::FederatedService service(opts);

  auto design =
      std::make_shared<const rtl::Module>(rtl::designs::counter(5));
  auto cfg = open_config(51);
  const std::size_t home =
      home_of(service, cfg.node.name, design->name());
  const std::size_t other = 1 - home;

  // Warm the shared L2 through the home hub.
  auto first = service.submit(hub::make_flow_job("warm", design, cfg));
  ASSERT_TRUE(first.ok());
  const auto warm = service.wait_for(*first, 60000.0);
  ASSERT_TRUE(warm.ok()) << warm.status().to_string();
  ASSERT_EQ(warm->state, hub::JobState::kSucceeded);
  ASSERT_GT(service.remote_cache()->stats().publishes, 0u);

  // The survivor's cold L1 + warm L2 can already resume the whole flow.
  const auto tmpl = flow::reference_template();
  EXPECT_EQ(tmpl.cached_prefix_depth(*design, cfg, service.l1_cache(other)),
            tmpl.steps().size());

  service.crash_hub(home);
  clock.advance_ms(200.0);
  (void)service.heartbeat_once();
  ASSERT_EQ(service.health().state(home), fed::HubHealth::kDown);

  // Same design, same seed, new home: fast-forwards through L2 instead of
  // recomputing, and the artifacts are bit-identical.
  auto second = service.submit(hub::make_flow_job("resume", design, cfg));
  ASSERT_TRUE(second.ok());
  const auto resumed = service.wait_for(*second, 60000.0);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  ASSERT_EQ(resumed->state, hub::JobState::kSucceeded);
  EXPECT_GT(resumed->cache_hits, 0u);
  EXPECT_EQ(resumed->artifact_digest, warm->artifact_digest);
}

TEST(FailoverServiceTest, PartitionedZombieTerminalsAreFencedNotSettled) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  opts.hub_options.capacity = 1;
  fed::FederatedService service(opts);

  auto gate = std::make_shared<std::atomic<bool>>(false);
  const std::size_t home = home_of(service, "", "zombie_design");
  auto id = service.submit(gated_job("z0", "zombie_design", gate));
  ASSERT_TRUE(id.ok());
  // Wait (real time) until the job occupies a worker on its home hub.
  for (int spin = 0; service.hub(home).running_count() == 0 && spin < 5000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_EQ(service.hub(home).running_count(), 1u);

  // Partition: probes black-hole, but the hub keeps running the job — the
  // canonical zombie.
  service.partition_hub(home, true);
  clock.advance_ms(200.0);
  (void)service.heartbeat_once();
  ASSERT_EQ(service.health().state(home), fed::HubHealth::kDown);
  EXPECT_EQ(service.stats().failed_over, 1u);

  // Open the gate: BOTH copies now finish. The zombie's terminal must be
  // fenced; only the failover copy settles.
  gate->store(true, std::memory_order_release);
  const auto record = service.wait_for(*id, 10000.0);
  ASSERT_TRUE(record.ok()) << record.status().to_string();
  EXPECT_EQ(record->state, hub::JobState::kSucceeded);
  EXPECT_EQ(record->failovers, 1);

  // Give the zombie's own terminal time to arrive, then check the fence.
  for (int spin = 0; spin < 5000; ++spin) {
    if (service.stats().stale_terminals_dropped > 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto s = service.stats();
  EXPECT_EQ(s.stale_terminals_dropped, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.duplicate_settlements, 0u);
  EXPECT_EQ(s.commercial_inflight, 0u);
}

TEST(FailoverServiceTest, RestartRejoinsGraduallyUnderABumpedEpoch) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  fed::FederatedService service(opts);

  service.crash_hub(0);
  clock.advance_ms(200.0);
  (void)service.heartbeat_once();
  ASSERT_EQ(service.health().state(0), fed::HubHealth::kDown);
  EXPECT_EQ(service.router().weight(0), 0.0);
  EXPECT_EQ(service.hub_epoch(0), 1u);

  service.restart_hub(0);
  EXPECT_EQ(service.hub_epoch(0), 2u);
  // Still masked until the monitor walks it back.
  EXPECT_EQ(service.health().state(0), fed::HubHealth::kDown);

  // First healthy beat: kRejoining, fractional ring weight.
  clock.advance_ms(10.0);
  (void)service.heartbeat_once();
  EXPECT_EQ(service.health().state(0), fed::HubHealth::kRejoining);
  const double ramp = service.router().weight(0);
  EXPECT_GT(ramp, 0.0);
  EXPECT_LT(ramp, 1.0);

  // Remaining beats: back to kUp at full weight.
  for (std::uint32_t beat = 1; beat < fast_monitor().rejoin_beats; ++beat) {
    clock.advance_ms(10.0);
    (void)service.heartbeat_once();
  }
  EXPECT_EQ(service.health().state(0), fed::HubHealth::kUp);
  EXPECT_EQ(service.router().weight(0), 1.0);
  EXPECT_EQ(service.stats().hub_rejoins, 1u);

  // The rebuilt incarnation accepts and completes work.
  auto id = service.submit(quick_job("fresh", "any_design"));
  ASSERT_TRUE(id.ok());
  const auto record = service.wait_for(*id, 10000.0);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, hub::JobState::kSucceeded);
}

TEST(FailoverServiceTest, FaultSitesDriveCrashAndHangFromTheProbe) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  fed::FederatedService service(opts);

  util::FaultInjector fi;
  // Heartbeats probe hubs in index order and a crashed hub's probe
  // short-circuits before the fault sites, so with one crash budget hub 0
  // crashes in round one and the hang rule's first (and only) hit is
  // hub 1's probe in the same round.
  fi.add_rule({.site = "fed.hub.crash", .max_triggers = 1});
  fi.add_rule({.site = "fed.hub.hang", .max_triggers = 1});
  util::FaultInjector::ScopedInstall install(fi);

  clock.advance_ms(10.0);
  (void)service.heartbeat_once();
  EXPECT_EQ(fi.site_stats("fed.hub.crash").triggered, 1u);
  EXPECT_EQ(fi.site_stats("fed.hub.hang").triggered, 1u);

  // Hub 0 is dead (probe short-circuits on the crashed flag); hub 1 is
  // paused but alive — its next clean probe resumes it.
  clock.advance_ms(10.0);
  (void)service.heartbeat_once();
  auto id = service.submit(quick_job("after_chaos", "some_design"));
  ASSERT_TRUE(id.ok());
  const auto record = service.wait_for(*id, 10000.0);
  ASSERT_TRUE(record.ok()) << record.status().to_string();
  EXPECT_EQ(record->state, hub::JobState::kSucceeded);
}

TEST(FailoverServiceTest, WaitForTimesOutWithoutDisturbingTheJob) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  opts.hub_options.start_paused = true;
  fed::FederatedService service(opts);

  auto id = service.submit(quick_job("slow", "d"));
  ASSERT_TRUE(id.ok());
  const auto timed_out = service.wait_for(*id, 20.0);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), util::ErrorCode::kDeadlineExceeded);

  service.start();
  const auto record = service.wait_for(*id, 10000.0);
  ASSERT_TRUE(record.ok()) << record.status().to_string();
  EXPECT_EQ(record->state, hub::JobState::kSucceeded);
}

TEST(FailoverServiceTest, OrphanedStealRacesConcurrentCancelSafely) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  opts.hub_options.capacity = 1;
  opts.hub_options.start_paused = true;
  opts.steal_batch = 8;
  fed::FederatedService service(opts);

  std::vector<fed::FedJobId> ids;
  for (int i = 0; i < 8; ++i) {
    auto spec = quick_job("o" + std::to_string(i), "hot_design");
    spec.deadline_ms = 1.0;  // consumed while queued on the paused hub
    auto id = service.submit(std::move(spec));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // A steal round that orphans (deadline already spent) racing cancels:
  // every job must still reach exactly one terminal state, with no hangs
  // and no double settlement.
  std::thread stealer([&] {
    for (int round = 0; round < 4; ++round) (void)service.rebalance_once();
  });
  std::thread canceller([&] {
    for (const auto id : ids) (void)service.cancel(id);
  });
  stealer.join();
  canceller.join();
  service.start();

  for (const auto id : ids) {
    const auto record = service.wait_for(id, 10000.0);
    ASSERT_TRUE(record.ok()) << record.status().to_string();
    EXPECT_TRUE(record->state == hub::JobState::kTimedOut ||
                record->state == hub::JobState::kCancelled)
        << to_string(record->state);
  }
  const auto s = service.stats();
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.duplicate_settlements, 0u);
}

TEST(FailoverServiceTest, EarlyTerminalRaceStressSettlesEverythingOnce) {
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.steal = true;
  opts.steal_interval_ms = 1.0;
  opts.health = true;
  opts.heartbeat_interval_ms = 1.0;
  opts.hub_options.capacity = 4;
  opts.max_commercial_inflight = 4;
  fed::FederatedService service(opts);

  // Instant jobs maximize the terminal-before-register window; half are
  // commercial so quota release is exercised under the race too.
  std::vector<fed::FedJobId> ids;
  for (int i = 0; i < 200; ++i) {
    auto spec = quick_job("e" + std::to_string(i), "d" + std::to_string(i % 7));
    if (i % 2 == 0) spec.quality = flow::FlowQuality::kCommercial;
    auto id = service.submit(std::move(spec));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  std::thread canceller([&] {
    for (std::size_t i = 0; i < ids.size(); i += 3) (void)service.cancel(ids[i]);
  });
  for (const auto id : ids) {
    const auto record = service.wait_for(id, 30000.0);
    ASSERT_TRUE(record.ok()) << record.status().to_string();
  }
  canceller.join();
  const auto s = service.stats();
  EXPECT_EQ(s.submitted, 200u);
  EXPECT_EQ(s.completed, 200u);
  EXPECT_EQ(s.duplicate_settlements, 0u);
  EXPECT_EQ(s.commercial_inflight, 0u) << "quota must drain to zero";
}

TEST(FailoverServiceTest, PrometheusExportsRemoteTierAndHealthGauges) {
  util::FakeClock clock;
  auto opts = chaos_opts(&clock);
  fed::FederatedService service(opts);

  auto id = service.submit(quick_job("m0", "metrics_design"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.wait_for(*id, 10000.0).ok());

  const auto prom = service.export_prometheus();
  EXPECT_NE(prom.find("eurochip_fed_remote_fetch_hits"), std::string::npos);
  EXPECT_NE(prom.find("eurochip_fed_remote_publishes"), std::string::npos);
  EXPECT_NE(prom.find("eurochip_fed_remote_bytes"), std::string::npos);
  EXPECT_NE(prom.find("eurochip_fed_hub_health{hub=\"hub-0\"} 0"),
            std::string::npos);
  EXPECT_NE(prom.find("eurochip_fed_hub_epoch{hub=\"hub-1\"} 1"),
            std::string::npos);

  // Health gauge tracks the monitor: crash + detect => 2 (kDown).
  service.crash_hub(0);
  clock.advance_ms(200.0);
  (void)service.heartbeat_once();
  const auto prom2 = service.export_prometheus();
  EXPECT_NE(prom2.find("eurochip_fed_hub_health{hub=\"hub-0\"} 2"),
            std::string::npos);
}

TEST(FailoverServiceTest, BackgroundHeartbeatDetectsACrashByItself) {
  // End-to-end smoke for the real (threaded, system-clock) detection
  // path; the deterministic variants above pin the exact semantics.
  fed::FederatedService::Options opts;
  opts.hubs = 2;
  opts.steal = false;
  opts.health = true;
  opts.heartbeat_interval_ms = 1.0;
  opts.monitor.suspect_after_ms = 5.0;
  opts.monitor.down_after_ms = 15.0;
  opts.hub_options.capacity = 2;
  opts.hub_options.start_paused = true;
  fed::FederatedService service(opts);

  const std::size_t home = home_of(service, "", "bg_design");
  auto id = service.submit(quick_job("bg0", "bg_design"));
  ASSERT_TRUE(id.ok());
  service.crash_hub(home);

  service.start();
  const auto record = service.wait_for(*id, 30000.0);
  ASSERT_TRUE(record.ok()) << record.status().to_string();
  EXPECT_EQ(record->state, hub::JobState::kSucceeded);
  EXPECT_EQ(record->failovers, 1);
  EXPECT_GE(service.stats().hub_down_events, 1u);
}

}  // namespace
}  // namespace eurochip
