#include <gtest/gtest.h>

#include "eurochip/flow/fingerprint.hpp"
#include "eurochip/flow/serialize.hpp"
#include "eurochip/netlist/library.hpp"
#include "eurochip/netlist/netlist.hpp"
#include "eurochip/netlist/simulator.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/util/wire.hpp"

namespace eurochip::netlist {
namespace {

CellLibrary test_library() {
  const auto node = pdk::standard_node("sky130ish");
  return pdk::build_library(node.value());
}

TEST(CellFnTest, ArityMatchesFunction) {
  EXPECT_EQ(fn_num_inputs(CellFn::kTie0), 0);
  EXPECT_EQ(fn_num_inputs(CellFn::kInv), 1);
  EXPECT_EQ(fn_num_inputs(CellFn::kNand2), 2);
  EXPECT_EQ(fn_num_inputs(CellFn::kMux2), 3);
  EXPECT_EQ(fn_num_inputs(CellFn::kDff), 1);
}

TEST(CellFnTest, TruthTablesEvaluateCorrectly) {
  // inv
  EXPECT_TRUE(fn_eval(CellFn::kInv, 0));
  EXPECT_FALSE(fn_eval(CellFn::kInv, 1));
  // nand2
  EXPECT_TRUE(fn_eval(CellFn::kNand2, 0b00));
  EXPECT_TRUE(fn_eval(CellFn::kNand2, 0b01));
  EXPECT_FALSE(fn_eval(CellFn::kNand2, 0b11));
  // xor2
  EXPECT_FALSE(fn_eval(CellFn::kXor2, 0b00));
  EXPECT_TRUE(fn_eval(CellFn::kXor2, 0b01));
  EXPECT_TRUE(fn_eval(CellFn::kXor2, 0b10));
  EXPECT_FALSE(fn_eval(CellFn::kXor2, 0b11));
  // aoi21: !((a&b)|c), inputs a=bit0 b=bit1 c=bit2
  EXPECT_TRUE(fn_eval(CellFn::kAoi21, 0b000));
  EXPECT_FALSE(fn_eval(CellFn::kAoi21, 0b011));
  EXPECT_FALSE(fn_eval(CellFn::kAoi21, 0b100));
  // mux2: s?b:a, a=bit0 b=bit1 s=bit2
  EXPECT_TRUE(fn_eval(CellFn::kMux2, 0b001));   // s=0 -> a=1
  EXPECT_FALSE(fn_eval(CellFn::kMux2, 0b101));  // s=1 -> b=0
  EXPECT_TRUE(fn_eval(CellFn::kMux2, 0b110));   // s=1 -> b=1
}

TEST(CellFnTest, AllCombinationalTruthTablesConsistentWithArity) {
  for (CellFn fn :
       {CellFn::kTie0, CellFn::kTie1, CellFn::kBuf, CellFn::kInv,
        CellFn::kAnd2, CellFn::kNand2, CellFn::kOr2, CellFn::kNor2,
        CellFn::kXor2, CellFn::kXnor2, CellFn::kAnd3, CellFn::kNand3,
        CellFn::kOr3, CellFn::kNor3, CellFn::kAoi21, CellFn::kOai21,
        CellFn::kMux2}) {
    const int n = fn_num_inputs(fn);
    const std::uint16_t tt = fn_truth_table(fn);
    // Bits above 2^n must be zero (table is exactly 2^n entries wide).
    if (n < 4) {
      EXPECT_EQ(tt >> (1 << n), 0) << to_string(fn);
    }
  }
}

TEST(NldmTableTest, ConstantTable) {
  const NldmTable t = NldmTable::constant(42.0);
  EXPECT_DOUBLE_EQ(t.lookup(0, 0), 42.0);
  EXPECT_DOUBLE_EQ(t.lookup(100, 100), 42.0);
}

TEST(NldmTableTest, BilinearInterpolation) {
  const NldmTable t({0.0, 10.0}, {0.0, 10.0}, {0.0, 10.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(t.lookup(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(10, 10), 20.0);
  EXPECT_DOUBLE_EQ(t.lookup(5, 5), 10.0);
  EXPECT_DOUBLE_EQ(t.lookup(0, 5), 5.0);
}

TEST(NldmTableTest, ClampsOutsideRange) {
  const NldmTable t({0.0, 10.0}, {0.0, 10.0}, {0.0, 10.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(t.lookup(-5, -5), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(100, 100), 20.0);
}

TEST(NldmTableTest, RejectsInconsistentShape) {
  EXPECT_THROW(NldmTable({0.0}, {0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(NldmTable({1.0, 0.0}, {0.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(CellLibraryTest, GeneratedLibraryHasAllFunctions) {
  const CellLibrary lib = test_library();
  EXPECT_GT(lib.size(), 20u);
  for (CellFn fn : {CellFn::kInv, CellFn::kNand2, CellFn::kXor2,
                    CellFn::kMux2, CellFn::kDff}) {
    EXPECT_TRUE(lib.smallest_for(fn).has_value()) << to_string(fn);
  }
}

TEST(CellLibraryTest, FindByName) {
  const CellLibrary lib = test_library();
  const auto idx = lib.find("INV_X1");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(lib.cell(*idx).fn, CellFn::kInv);
  EXPECT_FALSE(lib.find("NO_SUCH_CELL").ok());
}

TEST(CellLibraryTest, DriveStrengthOrdering) {
  const CellLibrary lib = test_library();
  const auto cells = lib.cells_for(CellFn::kNand2);
  ASSERT_GE(cells.size(), 2u);
  for (std::size_t i = 1; i < cells.size(); ++i) {
    EXPECT_LE(lib.cell(cells[i - 1]).drive_strength,
              lib.cell(cells[i]).drive_strength);
    EXPECT_LE(lib.cell(cells[i - 1]).area_um2, lib.cell(cells[i]).area_um2);
  }
  const auto strongest = lib.strongest_for(CellFn::kNand2);
  ASSERT_TRUE(strongest.has_value());
  EXPECT_EQ(lib.cell(*strongest).drive_strength,
            lib.cell(cells.back()).drive_strength);
}

TEST(CellLibraryTest, RejectsDuplicateNames) {
  CellLibrary lib("l", "n", 100, 10);
  LibraryCell c;
  c.name = "X";
  c.fn = CellFn::kInv;
  lib.add_cell(c);
  EXPECT_THROW(lib.add_cell(c), std::invalid_argument);
}

class NetlistFixture : public ::testing::Test {
 protected:
  NetlistFixture() : lib_(test_library()), nl_(&lib_, "t") {}

  std::uint32_t idx(const char* name) {
    return static_cast<std::uint32_t>(lib_.find(name).value());
  }

  CellLibrary lib_;
  Netlist nl_;
};

TEST_F(NetlistFixture, BuildAndCheckSimpleGate) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const auto g = nl_.add_cell("g1", idx("NAND2_X1"), {a, b});
  ASSERT_TRUE(g.ok());
  nl_.add_output("y", nl_.cell(g.value()).output);
  EXPECT_TRUE(nl_.check().ok());
  EXPECT_EQ(nl_.num_cells(), 1u);
  EXPECT_EQ(nl_.inputs().size(), 2u);
  EXPECT_EQ(nl_.outputs().size(), 1u);
}

TEST_F(NetlistFixture, ArityMismatchRejected) {
  const NetId a = nl_.add_input("a");
  EXPECT_FALSE(nl_.add_cell("g", idx("NAND2_X1"), {a}).ok());
}

TEST_F(NetlistFixture, RewireInputMaintainsConsistency) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const NetId c = nl_.add_input("c");
  const auto g = nl_.add_cell("g1", idx("AND2_X1"), {a, b});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(nl_.rewire_input(g.value(), 1, c).ok());
  EXPECT_TRUE(nl_.check().ok());
  EXPECT_TRUE(nl_.net(b).sinks.empty());
  ASSERT_EQ(nl_.net(c).sinks.size(), 1u);
  EXPECT_EQ(nl_.cell(g.value()).fanin[1], c);
}

TEST_F(NetlistFixture, ReplaceCellLibRequiresSameFunction) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const auto g = nl_.add_cell("g1", idx("AND2_X1"), {a, b});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(nl_.replace_cell_lib(g.value(), idx("AND2_X2")).ok());
  EXPECT_FALSE(nl_.replace_cell_lib(g.value(), idx("NAND2_X1")).ok());
  EXPECT_EQ(nl_.lib_cell(g.value()).drive_strength, 2);
}

TEST_F(NetlistFixture, TopoOrderRespectsDependencies) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const auto g1 = nl_.add_cell("g1", idx("AND2_X1"), {a, b});
  const auto g2 =
      nl_.add_cell("g2", idx("INV_X1"), {nl_.cell(g1.value()).output});
  const auto g3 = nl_.add_cell(
      "g3", idx("OR2_X1"), {nl_.cell(g2.value()).output, a});
  nl_.add_output("y", nl_.cell(g3.value()).output);
  const auto order = nl_.topo_order();
  ASSERT_TRUE(order.ok());
  std::vector<std::uint32_t> pos(nl_.num_cells());
  for (std::size_t i = 0; i < order->size(); ++i) {
    pos[(*order)[i].value] = static_cast<std::uint32_t>(i);
  }
  EXPECT_LT(pos[g1->value], pos[g2->value]);
  EXPECT_LT(pos[g2->value], pos[g3->value]);
}

TEST_F(NetlistFixture, AreaAndLeakageAccumulate) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  (void)nl_.add_cell("g1", idx("AND2_X1"), {a, b});
  (void)nl_.add_cell("g2", idx("AND2_X1"), {a, b});
  EXPECT_NEAR(nl_.total_area_um2(),
              2 * lib_.cell(idx("AND2_X1")).area_um2, 1e-9);
  EXPECT_GT(nl_.total_leakage_nw(), 0.0);
  EXPECT_EQ(nl_.count_fn(CellFn::kAnd2), 2u);
}

TEST_F(NetlistFixture, LogicDepthCountsLevels) {
  NetId prev = nl_.add_input("a");
  for (int i = 0; i < 5; ++i) {
    const auto g = nl_.add_cell("i" + std::to_string(i), idx("INV_X1"), {prev});
    prev = nl_.cell(g.value()).output;
  }
  nl_.add_output("y", prev);
  EXPECT_EQ(nl_.logic_depth(), 5u);
}

// --- simulator -------------------------------------------------------------

TEST_F(NetlistFixture, SimulatorEvaluatesCombinational) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const auto g = nl_.add_cell("g", idx("XOR2_X1"), {a, b});
  nl_.add_output("y", nl_.cell(g.value()).output);
  auto sim = Simulator::create(nl_);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->eval({false, false}), std::vector<bool>{false});
  EXPECT_EQ(sim->eval({true, false}), std::vector<bool>{true});
  EXPECT_EQ(sim->eval({true, true}), std::vector<bool>{false});
}

TEST_F(NetlistFixture, SimulatorSequentialToggle) {
  // DFF whose input is the inverse of its output: toggles every cycle.
  const auto inv_idx = idx("INV_X1");
  const auto dff_idx = idx("DFF_X1");
  const NetId tmp = nl_.add_const(false, "seed");
  const auto dff = nl_.add_cell("ff", dff_idx, {tmp});
  const auto inv = nl_.add_cell("nv", inv_idx, {nl_.cell(dff.value()).output});
  ASSERT_TRUE(nl_.rewire_input(dff.value(), 0, nl_.cell(inv.value()).output).ok());
  nl_.add_output("q", nl_.cell(dff.value()).output);
  auto sim = Simulator::create(nl_);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  EXPECT_EQ(sim->step({}), std::vector<bool>{false});
  EXPECT_EQ(sim->step({}), std::vector<bool>{true});
  EXPECT_EQ(sim->step({}), std::vector<bool>{false});
}

TEST_F(NetlistFixture, SimulatorCountsToggles) {
  const NetId a = nl_.add_input("a");
  const auto g = nl_.add_cell("g", idx("INV_X1"), {a});
  nl_.add_output("y", nl_.cell(g.value()).output);
  auto sim = Simulator::create(nl_);
  ASSERT_TRUE(sim.ok());
  (void)sim->eval({false});
  (void)sim->eval({true});
  (void)sim->eval({false});
  const auto& t = sim->toggle_counts();
  EXPECT_EQ(t[a.value], 2u);
  EXPECT_EQ(sim->eval_count(), 3u);
}

TEST_F(NetlistFixture, CheckCatchesDanglingInput) {
  const NetId floating = nl_.add_net("floating");
  const NetId a = nl_.add_input("a");
  const auto g = nl_.add_cell("g", idx("AND2_X1"), {a, floating});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(nl_.check().ok());
}

// --- check() gap regressions (validation added with the SoA core) ----------

TEST_F(NetlistFixture, CheckRejectsInputPortOnNonInputNet) {
  (void)nl_.add_input("a");
  RawNetlist raw = nl_.to_raw();
  // Tamper: the port stays, but its net is no longer input-driven.
  raw.net_driver_kind[raw.inputs[0].net.value] = DriverKind::kNone;
  auto nl = Netlist::from_raw(&lib_, "t", std::move(raw));
  ASSERT_TRUE(nl.ok());
  EXPECT_FALSE(nl->check().ok());
}

TEST_F(NetlistFixture, CheckRejectsInputNetWithoutPort) {
  (void)nl_.add_input("a");
  RawNetlist raw = nl_.to_raw();
  raw.inputs.clear();  // kInput-driven net left behind with no port
  auto nl = Netlist::from_raw(&lib_, "t", std::move(raw));
  ASSERT_TRUE(nl.ok());
  EXPECT_FALSE(nl->check().ok());
}

TEST_F(NetlistFixture, CheckRejectsTwoPortsClaimingOneNet) {
  (void)nl_.add_input("a");
  RawNetlist raw = nl_.to_raw();
  raw.inputs.push_back(raw.inputs[0]);
  auto nl = Netlist::from_raw(&lib_, "t", std::move(raw));
  ASSERT_TRUE(nl.ok());
  EXPECT_FALSE(nl->check().ok());
}

TEST_F(NetlistFixture, CheckRejectsDuplicateSinkForSamePin) {
  const NetId a = nl_.add_input("a");
  const auto g = nl_.add_cell("g", idx("INV_X1"), {a});
  ASSERT_TRUE(g.ok());
  RawNetlist raw = nl_.to_raw();
  // Duplicate net a's (g, pin 0) sink; the image shape stays legal, so
  // from_raw accepts it and check() must be the one to reject.
  const std::uint32_t pos = raw.sink_begin[a.value];
  raw.sink_pool.insert(raw.sink_pool.begin() + pos, raw.sink_pool[pos]);
  for (std::size_t i = a.value + 1; i < raw.sink_begin.size(); ++i) {
    ++raw.sink_begin[i];
  }
  auto nl = Netlist::from_raw(&lib_, "t", std::move(raw));
  ASSERT_TRUE(nl.ok());
  EXPECT_FALSE(nl->check().ok());
}

TEST_F(NetlistFixture, FromRawRejectsMalformedShapes) {
  const NetId a = nl_.add_input("a");
  ASSERT_TRUE(nl_.add_cell("g", idx("INV_X1"), {a}).ok());
  {
    RawNetlist raw = nl_.to_raw();
    raw.cell_fanin_begin.back() += 1;  // CSR end past the pool
    EXPECT_FALSE(Netlist::from_raw(&lib_, "t", std::move(raw)).ok());
  }
  {
    RawNetlist raw = nl_.to_raw();
    raw.cell_name[0].offset = 1u << 30;  // name outside the arena
    EXPECT_FALSE(Netlist::from_raw(&lib_, "t", std::move(raw)).ok());
  }
  {
    RawNetlist raw = nl_.to_raw();
    raw.fanin_pool[0] = NetId{999};  // dangling net id
    EXPECT_FALSE(Netlist::from_raw(&lib_, "t", std::move(raw)).ok());
  }
}

// --- SoA core properties ----------------------------------------------------

TEST_F(NetlistFixture, RewirePreservesRelativeSinkOrder) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  std::vector<CellId> gs;
  for (int i = 0; i < 3; ++i) {
    gs.push_back(
        nl_.add_cell("g" + std::to_string(i), idx("INV_X1"), {a}).value());
  }
  // Remove the middle sink: survivors keep their relative order (the
  // contract the old vector-erase storage gave analysis kernels).
  ASSERT_TRUE(nl_.rewire_input(gs[1], 0, b).ok());
  auto sinks = nl_.sink_snapshot(a);
  ASSERT_EQ(sinks.size(), 2u);
  EXPECT_EQ(sinks[0].cell, gs[0]);
  EXPECT_EQ(sinks[1].cell, gs[2]);
  // Re-adding appends at the tail.
  ASSERT_TRUE(nl_.rewire_input(gs[1], 0, a).ok());
  sinks = nl_.sink_snapshot(a);
  ASSERT_EQ(sinks.size(), 3u);
  EXPECT_EQ(sinks[2].cell, gs[1]);
  EXPECT_TRUE(nl_.check().ok());
}

TEST_F(NetlistFixture, RandomEditSequenceKeepsIdsAndAdjacencyConsistent) {
  // Property test: a long randomized add_cell / rewire_input /
  // replace_cell_lib sequence against a naive shadow model. Verifies ID
  // stability (a CellId keeps naming the same cell across later edits),
  // fanin contents, and exactly-once sink membership.
  struct ShadowCell {
    std::string name;
    std::uint32_t lib;
    std::vector<NetId> fanin;
  };
  std::vector<ShadowCell> shadow;
  std::vector<NetId> nets;
  for (int i = 0; i < 8; ++i) {
    nets.push_back(nl_.add_input("in" + std::to_string(i)));
  }
  const std::uint32_t and_x1 = idx("AND2_X1");
  const std::uint32_t and_x2 = idx("AND2_X2");
  const std::uint32_t inv_x1 = idx("INV_X1");

  std::uint64_t rng = 12345;
  const auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(rng >> 33);
  };
  const auto rand_net = [&]() { return nets[next() % nets.size()]; };

  for (int step = 0; step < 1500; ++step) {
    const std::uint32_t roll = next() % 100;
    if (roll < 50 || shadow.empty()) {
      const std::string name = "c" + std::to_string(shadow.size());
      ShadowCell sc;
      sc.lib = (next() % 2 == 0) ? and_x1 : inv_x1;
      sc.name = name;
      sc.fanin.push_back(rand_net());
      if (sc.lib == and_x1) sc.fanin.push_back(rand_net());
      const auto cell = nl_.add_cell(name, sc.lib, sc.fanin);
      ASSERT_TRUE(cell.ok());
      ASSERT_EQ(cell.value().value, shadow.size());  // dense, stable ids
      nets.push_back(nl_.output(cell.value()));
      shadow.push_back(std::move(sc));
    } else if (roll < 85) {
      const CellId cell{next() % static_cast<std::uint32_t>(shadow.size())};
      const auto pin =
          static_cast<std::uint8_t>(next() % shadow[cell.value].fanin.size());
      const NetId to = rand_net();
      ASSERT_TRUE(nl_.rewire_input(cell, pin, to).ok());
      shadow[cell.value].fanin[pin] = to;
    } else {
      const CellId cell{next() % static_cast<std::uint32_t>(shadow.size())};
      if (shadow[cell.value].lib == and_x1 ||
          shadow[cell.value].lib == and_x2) {
        const std::uint32_t to =
            shadow[cell.value].lib == and_x1 ? and_x2 : and_x1;
        ASSERT_TRUE(nl_.replace_cell_lib(cell, to).ok());
        shadow[cell.value].lib = to;
      }
    }
  }

  ASSERT_TRUE(nl_.check().ok());
  ASSERT_EQ(nl_.num_cells(), shadow.size());
  for (std::uint32_t i = 0; i < shadow.size(); ++i) {
    const CellView c = nl_.cell(CellId{i});
    EXPECT_EQ(c.name, shadow[i].name);
    EXPECT_EQ(c.lib_index, shadow[i].lib);
    ASSERT_EQ(c.fanin.size(), shadow[i].fanin.size());
    for (std::size_t p = 0; p < c.fanin.size(); ++p) {
      EXPECT_EQ(c.fanin[p], shadow[i].fanin[p]);
    }
  }
  // Exactly-once adjacency: every connected (cell, pin) appears in
  // precisely its fanin net's sink chain; per-net counts match the shadow.
  std::vector<std::size_t> expected_count(nl_.num_nets(), 0);
  for (std::uint32_t i = 0; i < shadow.size(); ++i) {
    for (std::size_t p = 0; p < shadow[i].fanin.size(); ++p) {
      ++expected_count[shadow[i].fanin[p].value];
      std::size_t hits = 0;
      for (const PinRef& s : nl_.sinks(shadow[i].fanin[p])) {
        if (s.cell.value == i && s.pin == p) ++hits;
      }
      EXPECT_EQ(hits, 1u) << "cell " << i << " pin " << p;
    }
  }
  for (NetId id : nl_.all_nets()) {
    EXPECT_EQ(nl_.num_sinks(id), expected_count[id.value]);
  }
  // The raw SoA image survives a round trip with identical structure.
  auto rt = Netlist::from_raw(&lib_, "t", nl_.to_raw());
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE(rt->check().ok());
  ASSERT_EQ(rt->num_cells(), nl_.num_cells());
  for (NetId id : nl_.all_nets()) {
    EXPECT_EQ(rt->sink_snapshot(id), nl_.sink_snapshot(id));
  }
}

TEST_F(NetlistFixture, MemoryBytesTracksGrowth) {
  const std::size_t empty = nl_.memory_bytes();
  const NetId a = nl_.add_input("a");
  ASSERT_TRUE(nl_.add_cell("g", idx("INV_X1"), {a}).ok());
  EXPECT_GT(nl_.memory_bytes(), empty);
}

TEST(NetlistScaleTest, SerializeRoundTrip100kCells) {
  // 100k-cell synthetic design through the v2 SoA wire codec: the reload
  // must be digest-equal (including sink order) and pass check().
  const CellLibrary lib = test_library();
  const std::uint32_t nand2 =
      static_cast<std::uint32_t>(lib.cells_for(CellFn::kNand2).front());
  const std::uint32_t dff =
      static_cast<std::uint32_t>(lib.cells_for(CellFn::kDff).front());
  Netlist nl(&lib, "scale100k");
  constexpr std::size_t kCells = 100'000;
  nl.reserve(kCells, kCells + 16, 2 * kCells, 24 * kCells);
  std::vector<NetId> nets;
  for (int i = 0; i < 16; ++i) {
    nets.push_back(nl.add_input("in" + std::to_string(i)));
  }
  std::uint64_t rng = 7;
  const auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(rng >> 33);
  };
  const auto pick = [&]() { return nets[next() % nets.size()]; };
  for (std::size_t i = 0; i < kCells; ++i) {
    const std::string name = "c" + std::to_string(i);
    const auto cell = next() % 16 == 0
                          ? nl.add_cell(name, dff, {pick()})
                          : nl.add_cell(name, nand2, {pick(), pick()});
    ASSERT_TRUE(cell.ok());
    nets.push_back(nl.output(cell.value()));
  }
  nl.add_output("out", nets.back());
  // A few rewires so the serialized sink order differs from the
  // pin-order reconstruction a naive codec would produce.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(nl.rewire_input(CellId{next() % kCells}, 0, pick()).ok());
  }
  ASSERT_TRUE(nl.check().ok());

  util::WireWriter w;
  flow::serialize(w, nl);
  util::WireReader r(w.buffer());
  const auto loaded = flow::deserialize_netlist(r, &lib);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->check().ok());
  EXPECT_TRUE(flow::digest_of(*loaded) == flow::digest_of(nl));
}

}  // namespace
}  // namespace eurochip::netlist
