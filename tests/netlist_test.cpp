#include <gtest/gtest.h>

#include "eurochip/netlist/library.hpp"
#include "eurochip/netlist/netlist.hpp"
#include "eurochip/netlist/simulator.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"

namespace eurochip::netlist {
namespace {

CellLibrary test_library() {
  const auto node = pdk::standard_node("sky130ish");
  return pdk::build_library(node.value());
}

TEST(CellFnTest, ArityMatchesFunction) {
  EXPECT_EQ(fn_num_inputs(CellFn::kTie0), 0);
  EXPECT_EQ(fn_num_inputs(CellFn::kInv), 1);
  EXPECT_EQ(fn_num_inputs(CellFn::kNand2), 2);
  EXPECT_EQ(fn_num_inputs(CellFn::kMux2), 3);
  EXPECT_EQ(fn_num_inputs(CellFn::kDff), 1);
}

TEST(CellFnTest, TruthTablesEvaluateCorrectly) {
  // inv
  EXPECT_TRUE(fn_eval(CellFn::kInv, 0));
  EXPECT_FALSE(fn_eval(CellFn::kInv, 1));
  // nand2
  EXPECT_TRUE(fn_eval(CellFn::kNand2, 0b00));
  EXPECT_TRUE(fn_eval(CellFn::kNand2, 0b01));
  EXPECT_FALSE(fn_eval(CellFn::kNand2, 0b11));
  // xor2
  EXPECT_FALSE(fn_eval(CellFn::kXor2, 0b00));
  EXPECT_TRUE(fn_eval(CellFn::kXor2, 0b01));
  EXPECT_TRUE(fn_eval(CellFn::kXor2, 0b10));
  EXPECT_FALSE(fn_eval(CellFn::kXor2, 0b11));
  // aoi21: !((a&b)|c), inputs a=bit0 b=bit1 c=bit2
  EXPECT_TRUE(fn_eval(CellFn::kAoi21, 0b000));
  EXPECT_FALSE(fn_eval(CellFn::kAoi21, 0b011));
  EXPECT_FALSE(fn_eval(CellFn::kAoi21, 0b100));
  // mux2: s?b:a, a=bit0 b=bit1 s=bit2
  EXPECT_TRUE(fn_eval(CellFn::kMux2, 0b001));   // s=0 -> a=1
  EXPECT_FALSE(fn_eval(CellFn::kMux2, 0b101));  // s=1 -> b=0
  EXPECT_TRUE(fn_eval(CellFn::kMux2, 0b110));   // s=1 -> b=1
}

TEST(CellFnTest, AllCombinationalTruthTablesConsistentWithArity) {
  for (CellFn fn :
       {CellFn::kTie0, CellFn::kTie1, CellFn::kBuf, CellFn::kInv,
        CellFn::kAnd2, CellFn::kNand2, CellFn::kOr2, CellFn::kNor2,
        CellFn::kXor2, CellFn::kXnor2, CellFn::kAnd3, CellFn::kNand3,
        CellFn::kOr3, CellFn::kNor3, CellFn::kAoi21, CellFn::kOai21,
        CellFn::kMux2}) {
    const int n = fn_num_inputs(fn);
    const std::uint16_t tt = fn_truth_table(fn);
    // Bits above 2^n must be zero (table is exactly 2^n entries wide).
    if (n < 4) {
      EXPECT_EQ(tt >> (1 << n), 0) << to_string(fn);
    }
  }
}

TEST(NldmTableTest, ConstantTable) {
  const NldmTable t = NldmTable::constant(42.0);
  EXPECT_DOUBLE_EQ(t.lookup(0, 0), 42.0);
  EXPECT_DOUBLE_EQ(t.lookup(100, 100), 42.0);
}

TEST(NldmTableTest, BilinearInterpolation) {
  const NldmTable t({0.0, 10.0}, {0.0, 10.0}, {0.0, 10.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(t.lookup(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(10, 10), 20.0);
  EXPECT_DOUBLE_EQ(t.lookup(5, 5), 10.0);
  EXPECT_DOUBLE_EQ(t.lookup(0, 5), 5.0);
}

TEST(NldmTableTest, ClampsOutsideRange) {
  const NldmTable t({0.0, 10.0}, {0.0, 10.0}, {0.0, 10.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(t.lookup(-5, -5), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(100, 100), 20.0);
}

TEST(NldmTableTest, RejectsInconsistentShape) {
  EXPECT_THROW(NldmTable({0.0}, {0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(NldmTable({1.0, 0.0}, {0.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(CellLibraryTest, GeneratedLibraryHasAllFunctions) {
  const CellLibrary lib = test_library();
  EXPECT_GT(lib.size(), 20u);
  for (CellFn fn : {CellFn::kInv, CellFn::kNand2, CellFn::kXor2,
                    CellFn::kMux2, CellFn::kDff}) {
    EXPECT_TRUE(lib.smallest_for(fn).has_value()) << to_string(fn);
  }
}

TEST(CellLibraryTest, FindByName) {
  const CellLibrary lib = test_library();
  const auto idx = lib.find("INV_X1");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(lib.cell(*idx).fn, CellFn::kInv);
  EXPECT_FALSE(lib.find("NO_SUCH_CELL").ok());
}

TEST(CellLibraryTest, DriveStrengthOrdering) {
  const CellLibrary lib = test_library();
  const auto cells = lib.cells_for(CellFn::kNand2);
  ASSERT_GE(cells.size(), 2u);
  for (std::size_t i = 1; i < cells.size(); ++i) {
    EXPECT_LE(lib.cell(cells[i - 1]).drive_strength,
              lib.cell(cells[i]).drive_strength);
    EXPECT_LE(lib.cell(cells[i - 1]).area_um2, lib.cell(cells[i]).area_um2);
  }
  const auto strongest = lib.strongest_for(CellFn::kNand2);
  ASSERT_TRUE(strongest.has_value());
  EXPECT_EQ(lib.cell(*strongest).drive_strength,
            lib.cell(cells.back()).drive_strength);
}

TEST(CellLibraryTest, RejectsDuplicateNames) {
  CellLibrary lib("l", "n", 100, 10);
  LibraryCell c;
  c.name = "X";
  c.fn = CellFn::kInv;
  lib.add_cell(c);
  EXPECT_THROW(lib.add_cell(c), std::invalid_argument);
}

class NetlistFixture : public ::testing::Test {
 protected:
  NetlistFixture() : lib_(test_library()), nl_(&lib_, "t") {}

  std::uint32_t idx(const char* name) {
    return static_cast<std::uint32_t>(lib_.find(name).value());
  }

  CellLibrary lib_;
  Netlist nl_;
};

TEST_F(NetlistFixture, BuildAndCheckSimpleGate) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const auto g = nl_.add_cell("g1", idx("NAND2_X1"), {a, b});
  ASSERT_TRUE(g.ok());
  nl_.add_output("y", nl_.cell(g.value()).output);
  EXPECT_TRUE(nl_.check().ok());
  EXPECT_EQ(nl_.num_cells(), 1u);
  EXPECT_EQ(nl_.inputs().size(), 2u);
  EXPECT_EQ(nl_.outputs().size(), 1u);
}

TEST_F(NetlistFixture, ArityMismatchRejected) {
  const NetId a = nl_.add_input("a");
  EXPECT_FALSE(nl_.add_cell("g", idx("NAND2_X1"), {a}).ok());
}

TEST_F(NetlistFixture, RewireInputMaintainsConsistency) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const NetId c = nl_.add_input("c");
  const auto g = nl_.add_cell("g1", idx("AND2_X1"), {a, b});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(nl_.rewire_input(g.value(), 1, c).ok());
  EXPECT_TRUE(nl_.check().ok());
  EXPECT_TRUE(nl_.net(b).sinks.empty());
  ASSERT_EQ(nl_.net(c).sinks.size(), 1u);
  EXPECT_EQ(nl_.cell(g.value()).fanin[1], c);
}

TEST_F(NetlistFixture, ReplaceCellLibRequiresSameFunction) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const auto g = nl_.add_cell("g1", idx("AND2_X1"), {a, b});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(nl_.replace_cell_lib(g.value(), idx("AND2_X2")).ok());
  EXPECT_FALSE(nl_.replace_cell_lib(g.value(), idx("NAND2_X1")).ok());
  EXPECT_EQ(nl_.lib_cell(g.value()).drive_strength, 2);
}

TEST_F(NetlistFixture, TopoOrderRespectsDependencies) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const auto g1 = nl_.add_cell("g1", idx("AND2_X1"), {a, b});
  const auto g2 =
      nl_.add_cell("g2", idx("INV_X1"), {nl_.cell(g1.value()).output});
  const auto g3 = nl_.add_cell(
      "g3", idx("OR2_X1"), {nl_.cell(g2.value()).output, a});
  nl_.add_output("y", nl_.cell(g3.value()).output);
  const auto order = nl_.topo_order();
  ASSERT_TRUE(order.ok());
  std::vector<std::uint32_t> pos(nl_.num_cells());
  for (std::size_t i = 0; i < order->size(); ++i) {
    pos[(*order)[i].value] = static_cast<std::uint32_t>(i);
  }
  EXPECT_LT(pos[g1->value], pos[g2->value]);
  EXPECT_LT(pos[g2->value], pos[g3->value]);
}

TEST_F(NetlistFixture, AreaAndLeakageAccumulate) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  (void)nl_.add_cell("g1", idx("AND2_X1"), {a, b});
  (void)nl_.add_cell("g2", idx("AND2_X1"), {a, b});
  EXPECT_NEAR(nl_.total_area_um2(),
              2 * lib_.cell(idx("AND2_X1")).area_um2, 1e-9);
  EXPECT_GT(nl_.total_leakage_nw(), 0.0);
  EXPECT_EQ(nl_.count_fn(CellFn::kAnd2), 2u);
}

TEST_F(NetlistFixture, LogicDepthCountsLevels) {
  NetId prev = nl_.add_input("a");
  for (int i = 0; i < 5; ++i) {
    const auto g = nl_.add_cell("i" + std::to_string(i), idx("INV_X1"), {prev});
    prev = nl_.cell(g.value()).output;
  }
  nl_.add_output("y", prev);
  EXPECT_EQ(nl_.logic_depth(), 5u);
}

// --- simulator -------------------------------------------------------------

TEST_F(NetlistFixture, SimulatorEvaluatesCombinational) {
  const NetId a = nl_.add_input("a");
  const NetId b = nl_.add_input("b");
  const auto g = nl_.add_cell("g", idx("XOR2_X1"), {a, b});
  nl_.add_output("y", nl_.cell(g.value()).output);
  auto sim = Simulator::create(nl_);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->eval({false, false}), std::vector<bool>{false});
  EXPECT_EQ(sim->eval({true, false}), std::vector<bool>{true});
  EXPECT_EQ(sim->eval({true, true}), std::vector<bool>{false});
}

TEST_F(NetlistFixture, SimulatorSequentialToggle) {
  // DFF whose input is the inverse of its output: toggles every cycle.
  const auto inv_idx = idx("INV_X1");
  const auto dff_idx = idx("DFF_X1");
  const NetId tmp = nl_.add_const(false, "seed");
  const auto dff = nl_.add_cell("ff", dff_idx, {tmp});
  const auto inv = nl_.add_cell("nv", inv_idx, {nl_.cell(dff.value()).output});
  ASSERT_TRUE(nl_.rewire_input(dff.value(), 0, nl_.cell(inv.value()).output).ok());
  nl_.add_output("q", nl_.cell(dff.value()).output);
  auto sim = Simulator::create(nl_);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  EXPECT_EQ(sim->step({}), std::vector<bool>{false});
  EXPECT_EQ(sim->step({}), std::vector<bool>{true});
  EXPECT_EQ(sim->step({}), std::vector<bool>{false});
}

TEST_F(NetlistFixture, SimulatorCountsToggles) {
  const NetId a = nl_.add_input("a");
  const auto g = nl_.add_cell("g", idx("INV_X1"), {a});
  nl_.add_output("y", nl_.cell(g.value()).output);
  auto sim = Simulator::create(nl_);
  ASSERT_TRUE(sim.ok());
  (void)sim->eval({false});
  (void)sim->eval({true});
  (void)sim->eval({false});
  const auto& t = sim->toggle_counts();
  EXPECT_EQ(t[a.value], 2u);
  EXPECT_EQ(sim->eval_count(), 3u);
}

TEST_F(NetlistFixture, CheckCatchesDanglingInput) {
  const NetId floating = nl_.add_net("floating");
  const NetId a = nl_.add_input("a");
  const auto g = nl_.add_cell("g", idx("AND2_X1"), {a, floating});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(nl_.check().ok());
}

}  // namespace
}  // namespace eurochip::netlist
