#include <gtest/gtest.h>

#include "eurochip/pdk/access.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/node.hpp"
#include "eurochip/pdk/registry.hpp"

namespace eurochip::pdk {
namespace {

TEST(RegistryTest, StandardRegistryHasAllNodes) {
  const PdkRegistry reg = standard_registry();
  EXPECT_EQ(reg.size(), 7u);
  for (const char* name :
       {"gf180ish", "sky130ish", "ihp130ish", "commercial65", "commercial28",
        "commercial7", "commercial2"}) {
    EXPECT_TRUE(reg.find(name).ok()) << name;
  }
  EXPECT_FALSE(reg.find("tsmc3").ok());
}

TEST(RegistryTest, OpenNodesAreOnlyMatureNodes) {
  const PdkRegistry reg = standard_registry();
  const auto open = reg.open_nodes();
  EXPECT_EQ(open.size(), 3u);
  for (const auto& n : open) {
    EXPECT_GE(n.feature_nm, 130) << n.name;  // paper: open PDKs 180/130nm only
  }
}

TEST(RegistryTest, RejectsDuplicateRegistration) {
  PdkRegistry reg;
  TechnologyNode n;
  n.name = "x";
  EXPECT_TRUE(reg.register_node(n).ok());
  EXPECT_FALSE(reg.register_node(n).ok());
}

TEST(RegistryTest, DesignCostAnchorsMatchPaper) {
  // Paper (III-C): "$5 million for a 130 nm chip to $725 million for 2 nm".
  const PdkRegistry reg = standard_registry();
  EXPECT_DOUBLE_EQ(reg.find("sky130ish")->design_cost_musd, 5.0);
  EXPECT_DOUBLE_EQ(reg.find("commercial2")->design_cost_musd, 725.0);
}

TEST(RegistryTest, ScalingLawsMonotone) {
  const PdkRegistry reg = standard_registry();
  std::vector<TechnologyNode> by_feature = reg.nodes();
  std::sort(by_feature.begin(), by_feature.end(),
            [](const auto& a, const auto& b) {
              return a.feature_nm > b.feature_nm;
            });
  for (std::size_t i = 1; i < by_feature.size(); ++i) {
    const auto& coarse = by_feature[i - 1];
    const auto& fine = by_feature[i];
    if (coarse.feature_nm == fine.feature_nm) continue;
    EXPECT_LT(fine.fo4_delay_ps, coarse.fo4_delay_ps);   // faster
    EXPECT_GE(fine.leakage_nw_per_gate, coarse.leakage_nw_per_gate);
    EXPECT_GE(fine.design_cost_musd, coarse.design_cost_musd);
    EXPECT_GE(fine.mpw_cost_keur_mm2, coarse.mpw_cost_keur_mm2);
    EXPECT_GE(fine.layers.size(), coarse.layers.size());
  }
}

TEST(LibraryGenTest, AreaScalesRoughlyQuadratically) {
  const auto n180 = standard_node("gf180ish").value();
  const auto n28 = standard_node("commercial28").value();
  const auto lib180 = build_library(n180);
  const auto lib28 = build_library(n28);
  const double a180 = lib180.cell(lib180.find("INV_X1").value()).area_um2;
  const double a28 = lib28.cell(lib28.find("INV_X1").value()).area_um2;
  const double expected_ratio = (180.0 * 180.0) / (28.0 * 28.0);
  EXPECT_NEAR(a180 / a28, expected_ratio, expected_ratio * 0.05);
}

TEST(LibraryGenTest, DelayScalesWithFeature) {
  const auto lib130 = build_library(standard_node("sky130ish").value());
  const auto lib7 = build_library(standard_node("commercial7").value());
  const auto& inv130 = lib130.cell(lib130.find("INV_X1").value());
  const auto& inv7 = lib7.cell(lib7.find("INV_X1").value());
  const double d130 = inv130.delay_ps.lookup(20.0, 4 * inv130.input_cap_ff);
  const double d7 = inv7.delay_ps.lookup(2.0, 4 * inv7.input_cap_ff);
  EXPECT_GT(d130 / d7, 5.0);  // ~130/7 ideally; allow margin
}

TEST(LibraryGenTest, WidthsSnapToSiteGrid) {
  const auto node = standard_node("sky130ish").value();
  const auto lib = build_library(node);
  for (std::size_t i = 0; i < lib.size(); ++i) {
    EXPECT_EQ(lib.cell(i).width_dbu % node.rules.site_width_dbu, 0)
        << lib.cell(i).name;
    EXPECT_GT(lib.cell(i).width_dbu, 0);
  }
}

TEST(LibraryGenTest, StrongerDrivesHaveLowerResistiveDelay) {
  const auto lib = build_library(standard_node("sky130ish").value());
  const auto& x1 = lib.cell(lib.find("NAND2_X1").value());
  const auto& x4 = lib.cell(lib.find("NAND2_X4").value());
  const double heavy_load = 40.0;
  EXPECT_LT(x4.delay_ps.lookup(20, heavy_load),
            x1.delay_ps.lookup(20, heavy_load));
  EXPECT_GT(x4.max_load_ff, x1.max_load_ff);
}

TEST(LibraryGenTest, OptionsControlComplexCells) {
  LibraryGenOptions opt;
  opt.include_complex_cells = false;
  const auto lib = build_library(standard_node("sky130ish").value(), opt);
  EXPECT_FALSE(lib.smallest_for(netlist::CellFn::kMux2).has_value());
  EXPECT_TRUE(lib.smallest_for(netlist::CellFn::kNand2).has_value());
}

// --- access policy ---------------------------------------------------------

UserProfile university_with_everything() {
  UserProfile u;
  u.name = "TU Test";
  u.affiliation = Affiliation::kUniversity;
  u.has_signed_nda = true;
  u.completed_tapeouts = 5;
  u.has_secured_funding = true;
  u.has_isolated_it = true;
  return u;
}

TEST(AccessTest, OpenNodeAlwaysGranted) {
  const auto node = standard_node("sky130ish").value();
  UserProfile u;
  u.affiliation = Affiliation::kHighSchool;
  EXPECT_TRUE(check_access(node, u).granted);
  EXPECT_TRUE(require_access(node, u).ok());
}

TEST(AccessTest, NdaRequiredForCommercial) {
  const auto node = standard_node("commercial65").value();
  UserProfile u;
  u.affiliation = Affiliation::kUniversity;
  EXPECT_FALSE(check_access(node, u).granted);
  u.has_signed_nda = true;
  EXPECT_TRUE(check_access(node, u).granted);
}

TEST(AccessTest, TrackRecordRequiredForAdvanced) {
  const auto node = standard_node("commercial28").value();
  UserProfile u = university_with_everything();
  u.completed_tapeouts = 0;
  const auto d = check_access(node, u);
  EXPECT_FALSE(d.granted);
  EXPECT_NE(d.reason.find("tape-outs"), std::string::npos);
  u.completed_tapeouts = 1;
  EXPECT_TRUE(check_access(node, u).granted);
}

TEST(AccessTest, ExportControlBlocksRestrictedUsers) {
  const auto node = standard_node("commercial7").value();
  UserProfile u = university_with_everything();
  u.export_group = ExportGroup::kRestricted;
  EXPECT_FALSE(check_access(node, u).granted);
  u.export_group = ExportGroup::kUnrestricted;
  EXPECT_TRUE(check_access(node, u).granted);
}

TEST(AccessTest, IsolatedItRequiredForExportControlled) {
  const auto node = standard_node("commercial2").value();
  UserProfile u = university_with_everything();
  u.has_isolated_it = false;
  EXPECT_FALSE(check_access(node, u).granted);
}

TEST(AccessTest, FundingRequiredForAdvanced) {
  const auto node = standard_node("commercial28").value();
  UserProfile u = university_with_everything();
  u.has_secured_funding = false;
  EXPECT_FALSE(check_access(node, u).granted);
}

TEST(AccessTest, HighSchoolOnlyOpen) {
  UserProfile u = university_with_everything();
  u.affiliation = Affiliation::kHighSchool;
  EXPECT_FALSE(check_access(standard_node("commercial65").value(), u).granted);
  EXPECT_TRUE(check_access(standard_node("gf180ish").value(), u).granted);
}

TEST(AccessTest, RequireAccessReturnsPermissionDenied) {
  const auto node = standard_node("commercial65").value();
  UserProfile u;
  const auto s = require_access(node, u);
  EXPECT_EQ(s.code(), util::ErrorCode::kPermissionDenied);
}

}  // namespace
}  // namespace eurochip::pdk
