#include <gtest/gtest.h>

#include "eurochip/rtl/hls.hpp"
#include "eurochip/rtl/simulator.hpp"

namespace eurochip::rtl::hls {
namespace {

std::uint64_t run_comb(Program& p, std::vector<std::uint64_t> in) {
  auto m = p.compile();
  EXPECT_TRUE(m.ok()) << m.status().to_string();
  auto sim = Simulator::create(*m);
  EXPECT_TRUE(sim.ok());
  return sim->eval(in)[0];
}

TEST(HlsTest, ArithmeticOperators) {
  Program p("arith", 8);
  const Value a = p.input("a");
  const Value b = p.input("b");
  p.output("sum", p.add(a, b));
  p.output("diff", p.sub(a, b));
  p.output("prod", p.mul(a, b));
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  auto sim = Simulator::create(*m);
  ASSERT_TRUE(sim.ok());
  const auto out = sim->eval({200, 14});
  EXPECT_EQ(out[0], (200u + 14u) & 0xFF);
  EXPECT_EQ(out[1], (200u - 14u) & 0xFF);
  EXPECT_EQ(out[2], (200u * 14u) & 0xFF);
}

TEST(HlsTest, MinMaxAbsDiff) {
  Program p("mm", 8);
  const Value a = p.input("a");
  const Value b = p.input("b");
  p.output("mn", p.min(a, b));
  p.output("mx", p.max(a, b));
  p.output("ad", p.abs_diff(a, b));
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  auto sim = Simulator::create(*m);
  ASSERT_TRUE(sim.ok());
  const auto out = sim->eval({100, 30});
  EXPECT_EQ(out[0], 30u);
  EXPECT_EQ(out[1], 100u);
  EXPECT_EQ(out[2], 70u);
  const auto out2 = sim->eval({30, 100});
  EXPECT_EQ(out2[2], 70u);
}

TEST(HlsTest, ClampSaturates) {
  Program p("cl", 8);
  const Value x = p.input("x");
  p.output("y", p.clamp(x, 10, 200));
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  auto sim = Simulator::create(*m);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->eval({5})[0], 10u);
  EXPECT_EQ(sim->eval({100})[0], 100u);
  EXPECT_EQ(sim->eval({250})[0], 200u);
}

TEST(HlsTest, SelectByNonZero) {
  Program p("sel", 8);
  const Value c = p.input("c");
  const Value a = p.input("a");
  const Value b = p.input("b");
  p.output("y", p.select(c, a, b));
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  auto sim = Simulator::create(*m);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->eval({0, 11, 22})[0], 22u);
  EXPECT_EQ(sim->eval({7, 11, 22})[0], 11u);
}

TEST(HlsTest, ScaleByConstant) {
  Program p("sc", 8);
  const Value x = p.input("x");
  p.output("y", p.scale(x, 5));
  Program q("sc0", 8);
  q.output("y", q.scale(q.input("x"), 0));
  EXPECT_EQ(run_comb(p, {7}), 35u);
  EXPECT_EQ(run_comb(q, {99}), 0u);
}

TEST(HlsTest, DelayLine) {
  Program p("dl", 8);
  p.output("y", p.delay(p.input("x"), 3));
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  auto sim = Simulator::create(*m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  (void)sim->step({42});
  (void)sim->step({0});
  (void)sim->step({0});
  EXPECT_EQ(sim->step({0})[0], 42u);
}

TEST(HlsTest, SlidingSumMatchesReference) {
  Program p("ss", 16);
  p.output("y", p.sliding_sum(p.input("x"), 4));
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  auto sim = Simulator::create(*m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  std::vector<std::uint64_t> window;
  for (std::uint64_t x : {5u, 9u, 2u, 8u, 1u, 7u, 3u}) {
    const auto out = sim->step({x});
    // Output observed pre-edge: includes x plus previous 3 samples.
    window.push_back(x);
    std::uint64_t expect = 0;
    const std::size_t from = window.size() >= 4 ? window.size() - 4 : 0;
    for (std::size_t i = from; i < window.size(); ++i) expect += window[i];
    EXPECT_EQ(out[0], expect & 0xFFFF);
  }
}

TEST(HlsTest, AccumulatorRuns) {
  Program p("acc", 16);
  p.output("y", p.accumulate(p.input("x")));
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  auto sim = Simulator::create(*m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  EXPECT_EQ(sim->step({10})[0], 0u);   // register output pre-edge
  EXPECT_EQ(sim->step({20})[0], 10u);
  EXPECT_EQ(sim->step({30})[0], 30u);
  EXPECT_EQ(sim->step({0})[0], 60u);
}

TEST(HlsTest, PipelineAddsOneCycle) {
  Program p("pipe", 8);
  p.output("y", p.pipeline(p.input("x")));
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  auto sim = Simulator::create(*m);
  ASSERT_TRUE(sim.ok());
  sim->reset();
  (void)sim->step({99});
  EXPECT_EQ(sim->step({0})[0], 99u);
}

TEST(HlsTest, LinesExpandIntoMoreRtl) {
  // The abstraction-raising claim: one HLS line becomes several RTL lines.
  Program p("filter", 12);
  const Value x = p.input("x");
  const Value smooth = p.sliding_sum(x, 8);
  const Value clamped = p.clamp(smooth, 0, 4000);
  p.output("y", p.pipeline(clamped));
  const std::size_t hls_lines = p.hls_lines();
  auto m = p.compile();
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->rtl_lines(), 3 * hls_lines);
}

TEST(HlsTest, ValidationErrors) {
  Program p("bad", 8);
  EXPECT_THROW((void)p.constant(256), std::invalid_argument);
  EXPECT_THROW((void)p.clamp(p.input("x"), 9, 3), std::invalid_argument);
  EXPECT_THROW((void)p.delay(p.input("y"), 0), std::invalid_argument);
  EXPECT_THROW(Program("w", 0), std::invalid_argument);
  Program empty("empty", 8);
  (void)empty.input("x");
  EXPECT_FALSE(empty.compile().ok());  // no outputs
}

}  // namespace
}  // namespace eurochip::rtl::hls
