#include <gtest/gtest.h>

#include <set>

#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/lutmap.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip::synth {
namespace {

TEST(LutMapTest, CoversEveryRequiredNode) {
  const auto m = rtl::designs::alu(8);
  const auto aig = elaborate(m);
  ASSERT_TRUE(aig.ok());
  const auto mapping = map_to_luts(*aig);
  ASSERT_TRUE(mapping.ok()) << mapping.status().to_string();
  EXPECT_GT(mapping->lut_count(), 0u);
  EXPECT_EQ(mapping->num_registers, aig->latches().size());
  // Every LUT's inputs must be leaves (PI/latch/const) or roots of other
  // LUTs — i.e. the cover is closed.
  std::set<std::uint32_t> roots;
  for (const auto& lut : mapping->luts) roots.insert(lut.root);
  for (const auto& lut : mapping->luts) {
    EXPECT_LE(lut.inputs.size(), 4u);
    for (std::uint32_t leaf : lut.inputs) {
      const auto kind = aig->node(leaf).kind;
      const bool ok = kind == NodeKind::kInput ||
                      kind == NodeKind::kLatch ||
                      kind == NodeKind::kConst ||
                      roots.count(leaf) > 0;
      EXPECT_TRUE(ok) << "dangling LUT input " << leaf;
    }
  }
}

TEST(LutMapTest, WiderLutsReduceCountAndDepth) {
  const auto m = rtl::designs::multiplier(8);
  const auto aig = optimize(*elaborate(m), 2);
  LutMapOptions k4;
  k4.k = 4;
  LutMapOptions k6;
  k6.k = 6;
  const auto m4 = map_to_luts(aig, k4);
  const auto m6 = map_to_luts(aig, k6);
  ASSERT_TRUE(m4.ok());
  ASSERT_TRUE(m6.ok());
  EXPECT_LE(m6->lut_count(), m4->lut_count());
  EXPECT_LE(m6->depth, m4->depth);
}

TEST(LutMapTest, LutCountBelowAndCount) {
  // Each 4-LUT absorbs several AND nodes.
  const auto m = rtl::designs::mini_cpu_datapath(8);
  const auto aig = optimize(*elaborate(m), 2);
  const auto mapping = map_to_luts(aig);
  ASSERT_TRUE(mapping.ok());
  EXPECT_LT(mapping->lut_count(), aig.num_ands());
}

TEST(LutMapTest, DepthBelowAigDepth) {
  const auto m = rtl::designs::adder(16);
  const auto aig = optimize(*elaborate(m), 2);
  const auto mapping = map_to_luts(aig);
  ASSERT_TRUE(mapping.ok());
  EXPECT_LT(mapping->depth, static_cast<int>(aig.max_level()));
  EXPECT_GT(mapping->estimated_fmax_mhz, 0.0);
}

TEST(LutMapTest, RejectsBadK) {
  const auto m = rtl::designs::counter(4);
  const auto aig = elaborate(m);
  LutMapOptions bad;
  bad.k = 1;
  EXPECT_FALSE(map_to_luts(*aig, bad).ok());
  bad.k = 9;
  EXPECT_FALSE(map_to_luts(*aig, bad).ok());
}

TEST(LutMapTest, PureRegisterDesignHasZeroLuts) {
  const auto m = rtl::designs::shift_register(4, 3);
  const auto aig = elaborate(m);
  const auto mapping = map_to_luts(*aig);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->lut_count(), 0u);
  EXPECT_EQ(mapping->num_registers, 12u);
  EXPECT_EQ(mapping->depth, 0);
}

}  // namespace
}  // namespace eurochip::synth
