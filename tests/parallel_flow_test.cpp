// Determinism contract of the parallel in-flow kernels: flow artifacts,
// engine outputs, and FlowCache keys are bit-identical at any thread
// count for a fixed seed.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "eurochip/flow/cache.hpp"
#include "eurochip/flow/fingerprint.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/power/power.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/timing/sta.hpp"

namespace eurochip::flow {
namespace {

FlowConfig config_for(FlowQuality quality, const std::string& node,
                      int threads) {
  FlowConfig cfg;
  cfg.node = pdk::standard_node(node).value();
  cfg.quality = quality;
  cfg.threads = threads;
  return cfg;
}

struct Snapshot {
  util::Digest placed;
  util::Digest routed;
  std::vector<std::uint8_t> gds;
  double wns_ps = 0.0;
  double fmax_mhz = 0.0;
  double power_uw = 0.0;
  double activity = 0.0;
  std::size_t drc = 0;
};

Snapshot run_at(const rtl::Module& m, FlowQuality quality,
                const std::string& node, int threads) {
  const auto r = run_reference_flow(m, config_for(quality, node, threads));
  EXPECT_TRUE(r.ok()) << r.status().to_string();
  Snapshot s;
  s.placed = digest_of(*r->artifacts.placed);
  s.routed = digest_of(*r->artifacts.routed);
  s.gds = r->artifacts.gds_bytes;
  s.wns_ps = r->artifacts.timing.wns_ps;
  s.fmax_mhz = r->artifacts.timing.fmax_mhz;
  s.power_uw = r->artifacts.power.total_uw;
  s.activity = r->artifacts.power.average_activity;
  s.drc = r->ppa.drc_violations;
  return s;
}

void expect_identical(const Snapshot& a, const Snapshot& b) {
  EXPECT_TRUE(a.placed == b.placed);
  EXPECT_TRUE(a.routed == b.routed);
  EXPECT_EQ(a.gds, b.gds);  // byte-for-byte GDSII
  EXPECT_EQ(a.wns_ps, b.wns_ps);
  EXPECT_EQ(a.fmax_mhz, b.fmax_mhz);
  EXPECT_EQ(a.power_uw, b.power_uw);
  EXPECT_EQ(a.activity, b.activity);
  EXPECT_EQ(a.drc, b.drc);
}

TEST(ParallelFlowTest, OpenFlowArtifactsIdenticalAcrossThreadCounts) {
  const auto m = rtl::designs::alu(8);
  const Snapshot t1 = run_at(m, FlowQuality::kOpen, "sky130ish", 1);
  expect_identical(t1, run_at(m, FlowQuality::kOpen, "sky130ish", 2));
  expect_identical(t1, run_at(m, FlowQuality::kOpen, "sky130ish", 8));
}

TEST(ParallelFlowTest, CommercialFlowArtifactsIdenticalAcrossThreadCounts) {
  // Commercial preset also exercises the parallel dual-objective map trial.
  const auto m = rtl::designs::multiplier(8);
  const Snapshot t1 = run_at(m, FlowQuality::kCommercial, "commercial28", 1);
  expect_identical(t1, run_at(m, FlowQuality::kCommercial, "commercial28", 2));
  expect_identical(t1, run_at(m, FlowQuality::kCommercial, "commercial28", 8));
}

TEST(ParallelFlowTest, EngineResultsThreadCountInvariant) {
  const auto m = rtl::designs::fir_filter(8, 4);
  const auto base = run_reference_flow(
      m, config_for(FlowQuality::kOpen, "sky130ish", 1));
  ASSERT_TRUE(base.ok());
  const auto& nl = *base->artifacts.mapped;
  const auto node = pdk::standard_node("sky130ish").value();

  place::PlacementOptions po;
  po.seed = 7;
  po.threads = 1;
  const auto p1 = place::place(nl, node, po);
  po.threads = 4;
  const auto p4 = place::place(nl, node, po);
  ASSERT_TRUE(p1.ok() && p4.ok());
  EXPECT_TRUE(digest_of(*p1) == digest_of(*p4));

  route::RouteOptions ro;
  ro.threads = 1;
  const auto r1 = route::route(*p1, node, ro);
  ro.threads = 4;
  const auto r4 = route::route(*p4, node, ro);
  ASSERT_TRUE(r1.ok() && r4.ok());
  EXPECT_TRUE(digest_of(*r1) == digest_of(*r4));

  timing::StaOptions so;
  so.threads = 1;
  const auto s1 = timing::analyze(nl, node, so, &*r1);
  so.threads = 4;
  const auto s4 = timing::analyze(nl, node, so, &*r4);
  ASSERT_TRUE(s1.ok() && s4.ok());
  EXPECT_EQ(s1->wns_ps, s4->wns_ps);
  EXPECT_EQ(s1->tns_ps, s4->tns_ps);
  EXPECT_EQ(s1->fmax_mhz, s4->fmax_mhz);
  EXPECT_EQ(s1->worst_hold_slack_ps, s4->worst_hold_slack_ps);

  power::PowerOptions pw;
  pw.threads = 1;
  const auto w1 = power::estimate(nl, node, pw, &*r1);
  pw.threads = 4;
  const auto w4 = power::estimate(nl, node, pw, &*r4);
  ASSERT_TRUE(w1.ok() && w4.ok());
  EXPECT_EQ(w1->total_uw, w4->total_uw);
  EXPECT_EQ(w1->average_activity, w4->average_activity);
}

TEST(ParallelFlowTest, CachePopulatedSerialHitsParallel) {
  // FlowCache keys must span thread counts: threads is excluded from all
  // fingerprints, so a cache warmed at threads=1 fully hits at threads=8.
  FlowCache cache;
  const auto m = rtl::designs::alu(8);
  FlowConfig cold = config_for(FlowQuality::kOpen, "sky130ish", 1);
  cold.cache = &cache;
  const auto first = run_reference_flow(m, cold);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache_hits, 0u);

  FlowConfig warm = config_for(FlowQuality::kOpen, "sky130ish", 8);
  warm.cache = &cache;
  const auto second = run_reference_flow(m, warm);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache_hits, second->steps.size());
}

TEST(ParallelFlowTest, ThreadsKnobInEngineOptionsExcludedFromKeys) {
  FlowCache cache;
  const auto m = rtl::designs::counter(8);
  FlowConfig a = config_for(FlowQuality::kOpen, "sky130ish", 0);
  a.place_options = place::PlacementOptions{};
  a.place_options->threads = 2;
  a.cache = &cache;
  ASSERT_TRUE(run_reference_flow(m, a).ok());

  FlowConfig b = a;
  b.place_options->threads = 4;
  const auto r = run_reference_flow(m, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cache_hits, r->steps.size());
}

// Parallel flows running concurrently, each with parallel kernels inside —
// the nesting-token scheme must neither deadlock nor oversubscribe, and
// every run must still produce the canonical artifacts. Also the main
// TSan stress target for the new kernels.
TEST(ParallelFlowTest, ConcurrentParallelFlowsStayDeterministic) {
  const auto m = rtl::designs::alu(8);
  const Snapshot expected = run_at(m, FlowQuality::kOpen, "sky130ish", 1);
  constexpr int kRuns = 4;
  std::vector<Snapshot> got(kRuns);
  std::vector<std::thread> threads;
  threads.reserve(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    threads.emplace_back(
        [&, i] { got[i] = run_at(m, FlowQuality::kOpen, "sky130ish", 4); });
  }
  for (auto& t : threads) t.join();
  for (const Snapshot& s : got) expect_identical(expected, s);
}

}  // namespace
}  // namespace eurochip::flow
