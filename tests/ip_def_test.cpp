// Tests for the DEF placement exchange and the IP-reuse model.
#include <gtest/gtest.h>

#include "eurochip/core/ip_reuse.hpp"
#include "eurochip/pdk/library_gen.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/place/def.hpp"
#include "eurochip/place/placer.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/synth/elaborate.hpp"
#include "eurochip/synth/mapper.hpp"
#include "eurochip/synth/opt.hpp"

namespace eurochip {
namespace {

// --- DEF ---------------------------------------------------------------

struct Physical {
  pdk::TechnologyNode node;
  std::unique_ptr<netlist::CellLibrary> lib;
  std::unique_ptr<netlist::Netlist> nl;
  std::unique_ptr<place::PlacedDesign> placed;
};

Physical make_physical(const rtl::Module& m) {
  Physical p;
  p.node = pdk::standard_node("sky130ish").value();
  p.lib = std::make_unique<netlist::CellLibrary>(pdk::build_library(p.node));
  const auto aig = synth::elaborate(m);
  auto mapped = synth::map_to_library(synth::optimize(*aig, 2), *p.lib);
  p.nl = std::make_unique<netlist::Netlist>(std::move(*mapped));
  auto placed = place::place(*p.nl, p.node);
  p.placed = std::make_unique<place::PlacedDesign>(std::move(*placed));
  return p;
}

TEST(DefTest, SummaryMatchesDesign) {
  const auto m = rtl::designs::alu(8);
  const Physical p = make_physical(m);
  const auto summary = place::read_def_summary(place::write_def(*p.placed));
  ASSERT_TRUE(summary.ok()) << summary.status().to_string();
  EXPECT_EQ(summary->design_name, "mapped");
  EXPECT_EQ(summary->num_components, p.nl->num_cells());
  EXPECT_EQ(summary->num_pins,
            p.nl->inputs().size() + p.nl->outputs().size());
  EXPECT_EQ(summary->num_rows, p.placed->floorplan.rows().size());
  EXPECT_EQ(summary->die, p.placed->floorplan.die());
  EXPECT_TRUE(summary->all_placed);
}

TEST(DefTest, ContainsStandardSections) {
  const auto m = rtl::designs::counter(4);
  const Physical p = make_physical(m);
  const std::string def = place::write_def(*p.placed);
  for (const char* needle :
       {"VERSION 5.8 ;", "UNITS DISTANCE MICRONS 1000 ;", "DIEAREA (",
        "COMPONENTS ", "END COMPONENTS", "PINS ", "END PINS",
        "END DESIGN"}) {
    EXPECT_NE(def.find(needle), std::string::npos) << needle;
  }
}

TEST(DefTest, ReaderRejectsCorruptInput) {
  EXPECT_FALSE(place::read_def_summary("").ok());
  EXPECT_FALSE(place::read_def_summary("DESIGN x ;\n").ok());  // no END
  // Count mismatch.
  const std::string bad =
      "DESIGN x ;\nCOMPONENTS 2 ;\n- a INV + PLACED ( 0 0 ) N ;\n"
      "END COMPONENTS\nPINS 0 ;\nEND PINS\nEND DESIGN\n";
  EXPECT_FALSE(place::read_def_summary(bad).ok());
  // Statement outside a section.
  const std::string stray =
      "DESIGN x ;\n- a INV + PLACED ( 0 0 ) N ;\nEND DESIGN\n";
  EXPECT_FALSE(place::read_def_summary(stray).ok());
}

TEST(DefTest, RoundTripOnCatalogSample) {
  for (int idx : {0, 4, 9}) {
    auto catalog = rtl::designs::standard_catalog();
    const Physical p = make_physical(catalog[static_cast<std::size_t>(idx)].module);
    const auto summary =
        place::read_def_summary(place::write_def(*p.placed));
    ASSERT_TRUE(summary.ok()) << catalog[static_cast<std::size_t>(idx)].name;
    EXPECT_EQ(summary->num_components, p.nl->num_cells());
  }
}

// --- IP reuse ----------------------------------------------------------

TEST(IpReuseTest, QualityWeightsVerificationMost) {
  core::IpBlock verified;
  verified.gates = 1000;
  verified.verification_maturity = 1.0;
  core::IpBlock documented;
  documented.gates = 1000;
  documented.verification_maturity = 0.0;
  documented.collateral = {true, true, true, true, true};
  EXPECT_GT(verified.quality(), documented.quality());
  EXPECT_LE(verified.quality(), 1.0);
}

TEST(IpReuseTest, HighQualityReuseWins) {
  const core::ReuseEffortModel model;
  const auto catalog = core::example_catalog();
  const auto gold = catalog.find("alu_gold");
  ASSERT_TRUE(gold.ok());
  EXPECT_GT(model.savings_days(*gold), 0.0);
  EXPECT_LT(model.integration_days(*gold), model.scratch_days(*gold));
}

TEST(IpReuseTest, ThesiswareLoses) {
  // The paper's warning: unverified IP without collateral costs more than
  // writing from scratch.
  const core::ReuseEffortModel model;
  const auto catalog = core::example_catalog();
  const auto junk = catalog.find("cpu_thesisware");
  ASSERT_TRUE(junk.ok());
  EXPECT_LT(model.savings_days(*junk), 0.0);
}

TEST(IpReuseTest, NdaFrictionReducesSavings) {
  const core::ReuseEffortModel model;
  const auto catalog = core::example_catalog();
  const auto nda = catalog.find("mult_nda");
  ASSERT_TRUE(nda.ok());
  core::IpBlock liberal = *nda;
  liberal.liberal_license = true;
  EXPECT_GT(model.savings_days(liberal), model.savings_days(*nda));
}

TEST(IpReuseTest, BreakevenQualityDecreasesWithSize) {
  // Bigger blocks amortize integration risk: reuse pays off at lower
  // quality the larger the block.
  const core::ReuseEffortModel model;
  const double be_small = model.breakeven_quality(300);
  const double be_large = model.breakeven_quality(5000);
  EXPECT_GE(be_small, be_large);
  EXPECT_GT(be_small, 0.0);
  EXPECT_LT(be_large, 1.0);
}

TEST(IpReuseTest, SystemSavingsComposeAndValidate) {
  const core::ReuseEffortModel model;
  const auto catalog = core::example_catalog();
  const auto ok =
      catalog.system_savings_days({"alu_gold", "fir_decent"}, model);
  ASSERT_TRUE(ok.ok());
  EXPECT_GT(*ok, 0.0);
  EXPECT_FALSE(
      catalog.system_savings_days({"alu_gold", "nonexistent"}, model).ok());
}

}  // namespace
}  // namespace eurochip
