// MPW shuttle planning: for a given design, which nodes can a group
// afford, and which fit a course / thesis / PhD schedule? Exercises the
// economics models around a real flow-derived die size (paper §III-C and
// Recommendation 6).
//
//   ./examples/mpw_planner [budget_keur]
#include <cstdio>
#include <cstdlib>

#include "eurochip/econ/cost_model.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/strings.hpp"
#include "eurochip/util/table.hpp"

using namespace eurochip;

int main(int argc, char** argv) {
  const double budget_keur = argc > 1 ? std::atof(argv[1]) : 25.0;
  const rtl::Module design = rtl::designs::fir_filter(12, 8);
  const econ::MpwCostModel mpw;
  const econ::AcademicDurations durations;

  std::printf("Design: %s | budget: %.0f kEUR\n\n", design.name().c_str(),
              budget_keur);

  util::Table t("MPW planning per node (Europractice-like 40% discount)");
  t.set_header({"node", "die_mm2", "slot_kEUR", "affordable", "turnaround_mo",
                "fits_course", "fits_thesis", "fits_phd"});

  const auto program = econ::europractice_like();
  for (const auto& node : pdk::standard_nodes()) {
    flow::FlowConfig cfg;
    cfg.node = node;
    const auto result = flow::run_reference_flow(design, cfg);
    if (!result.ok()) continue;
    const double die = result->ppa.die_area_mm2;
    const double cost = mpw.slot_cost_keur(node, die, program);
    const double months = mpw.turnaround_months(node);
    t.add_row({node.name, util::fmt(die, 4), util::fmt(cost, 1),
               cost <= budget_keur ? "yes" : "no", util::fmt(months, 1),
               mpw.fits_schedule(node, 2.0, durations.course) ? "yes" : "no",
               mpw.fits_schedule(node, 3.0, durations.msc_thesis) ? "yes" : "no",
               mpw.fits_schedule(node, 6.0, durations.phd_project) ? "yes"
                                                                   : "no"});
  }
  std::printf("%s\n", t.render().c_str());

  // Recommendation 6 scenario: what sponsorship would change.
  util::Table s("Same slots under a sponsored Open-MPW program (Rec 6)");
  s.set_header({"node", "slot_kEUR"});
  for (const auto& node : pdk::standard_registry().open_nodes()) {
    s.add_row({node.name,
               util::fmt(mpw.slot_cost_keur(node, 2.0,
                                            econ::sponsored_open_mpw()),
                         1)});
  }
  std::printf("%s", s.render().c_str());
  std::printf("\nNote: shuttle turnaround alone exceeds a %.0f-month course "
              "on every node — the paper's scheduling argument.\n",
              durations.course);
  return 0;
}
