// Abstraction raising end-to-end (paper Recommendations 1 & 4): a sensor
// conditioning pipeline written at HLS level — five dataflow statements —
// compiles to RTL, runs the full flow, and exports every handoff artifact
// an enablement platform would serve: structural Verilog, a Liberty view
// of the target library, and the GDSII stream.
//
//   ./examples/hls_sensor_pipeline
#include <cstdio>

#include "eurochip/edu/productivity.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/netlist/liberty.hpp"
#include "eurochip/netlist/verilog.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/hls.hpp"
#include "eurochip/rtl/simulator.hpp"
#include "eurochip/util/strings.hpp"
#include "eurochip/util/table.hpp"

using namespace eurochip;

int main() {
  // --- 1. The "high-school friendly" description. ---------------------------
  rtl::hls::Program prog("sensor_pipeline", 12);
  const auto sample = prog.input("sample");
  const auto smoothed = prog.sliding_sum(sample, 4);     // moving average x4
  const auto limited = prog.clamp(smoothed, 40, 3800);   // saturate
  const auto peak = prog.max(limited, prog.delay(limited, 1));
  prog.output("filtered", prog.pipeline(limited));
  prog.output("peak", peak);

  const auto module = prog.compile();
  if (!module.ok()) {
    std::fprintf(stderr, "HLS compile failed: %s\n",
                 module.status().to_string().c_str());
    return 1;
  }
  std::printf("HLS program: %zu lines -> %zu RTL lines\n\n",
              prog.hls_lines(), module->rtl_lines());

  // --- 2. Sanity-simulate before committing to silicon. ---------------------
  auto sim = rtl::Simulator::create(*module);
  sim->reset();
  std::printf("impulse response (filtered):");
  (void)sim->step({400});
  for (int i = 0; i < 6; ++i) {
    std::printf(" %llu",
                static_cast<unsigned long long>(sim->step({0})[0]));
  }
  std::printf("\n\n");

  // --- 3. Full flow on the beginner node. ------------------------------------
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.gds_output_path = "sensor_pipeline.gds";
  const auto result = flow::run_reference_flow(*module, cfg);
  if (!result.ok()) {
    std::fprintf(stderr, "flow failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  const auto fp = edu::measure_frontend(*module, *result->artifacts.mapped);
  util::Table t("sensor_pipeline on " + cfg.node.name);
  t.set_header({"metric", "value"});
  t.add_row({"HLS lines", std::to_string(prog.hls_lines())});
  t.add_row({"RTL lines", std::to_string(fp.rtl_lines)});
  t.add_row({"gates", std::to_string(fp.gates)});
  t.add_row({"gates/HLS line",
             util::fmt(static_cast<double>(fp.gates) /
                           static_cast<double>(prog.hls_lines()), 1)});
  t.add_row({"fmax (MHz)", util::fmt(result->ppa.fmax_mhz, 1)});
  t.add_row({"clock skew (ps)", util::fmt(result->ppa.clock_skew_ps, 2)});
  t.add_row({"power (uW)", util::fmt(result->ppa.power_uw, 1)});
  t.add_row({"DRC violations", std::to_string(result->ppa.drc_violations)});
  std::printf("%s\n", t.render().c_str());

  // --- 4. Export the exchange artifacts. -------------------------------------
  const std::string verilog =
      netlist::write_verilog(*result->artifacts.mapped);
  const std::string liberty =
      netlist::write_liberty(*result->artifacts.library);
  std::printf("artifacts:\n");
  std::printf("  sensor_pipeline.gds   : %s (GDSII)\n",
              util::fmt_si(result->ppa.gds_bytes, 1).c_str());
  std::printf("  netlist (Verilog)     : %s, %zu instances\n",
              util::fmt_si(static_cast<double>(verilog.size()), 1).c_str(),
              netlist::read_verilog_summary(verilog)->num_instances);
  std::printf("  library (Liberty)     : %s, %zu cells\n",
              util::fmt_si(static_cast<double>(liberty.size()), 1).c_str(),
              netlist::read_liberty_summary(liberty)->num_cells);
  return 0;
}
