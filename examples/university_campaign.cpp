// A university joins a centralized enablement hub (Recommendation 7) and
// tapes out a small CPU datapath: access checks, enablement lead time, a
// real flow run, shuttle pricing, and schedule feasibility — compared
// against the same university doing everything itself.
//
//   ./examples/university_campaign
#include <cstdio>

#include "eurochip/core/campaign.hpp"
#include "eurochip/econ/cost_model.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/strings.hpp"
#include "eurochip/util/table.hpp"

using namespace eurochip;

namespace {

void print_report(const char* label, const core::CampaignReport& r) {
  util::Table t(label);
  t.set_header({"metric", "value"});
  t.add_row({"node", r.node_name});
  t.add_row({"enablement lead time (days)", util::fmt(r.enablement_days, 1)});
  t.add_row({"cells", std::to_string(r.ppa.cell_count)});
  t.add_row({"fmax (MHz)", util::fmt(r.ppa.fmax_mhz, 1)});
  t.add_row({"die area (mm2)", util::fmt(r.die_area_mm2, 4)});
  t.add_row({"MPW slot cost (kEUR)", util::fmt(r.mpw_cost_keur, 1)});
  t.add_row({"shuttle turnaround (months)", util::fmt(r.turnaround_months, 1)});
  t.add_row({"total project (months)", util::fmt(r.total_months, 1)});
  t.add_row({"fits 12-month project", r.fits_schedule ? "yes" : "NO"});
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  // The design: a small CPU datapath an MSc student might tape out.
  const rtl::Module design = rtl::designs::mini_cpu_datapath(8);

  // A typical first-time university group: half an FTE of support staff,
  // little prior experience, unrestricted students.
  core::UniversityProfile uni;
  uni.name = "TU Example";
  uni.support_staff_fte = 0.5;
  uni.experience = 0.2;
  uni.technologies_needed = 1;
  uni.legal.affiliation = pdk::Affiliation::kUniversity;

  // A hub with the open nodes plus a licensed commercial node.
  core::EnablementHub hub(pdk::standard_registry(), {});
  for (const char* n : {"sky130ish", "ihp130ish", "commercial28"}) {
    (void)hub.enable_technology(n);
  }
  const std::size_t member = hub.add_member(uni);

  core::CampaignConfig cfg;
  cfg.node_name = "ihp130ish";
  cfg.tier = edu::LearnerTier::kIntermediate;
  cfg.mpw_program = econ::europractice_like();
  cfg.design_months = 3.0;
  cfg.available_months = 12.0;

  std::printf("University: %s | design: %s (%zu RTL lines)\n\n",
              uni.name.c_str(), design.name().c_str(), design.rtl_lines());

  const auto via_hub = core::run_campaign(hub, member, design, cfg);
  if (!via_hub.ok()) {
    std::fprintf(stderr, "hub campaign failed: %s\n",
                 via_hub.status().to_string().c_str());
    return 1;
  }
  print_report("Campaign via enablement hub (Rec 7)", *via_hub);

  const auto diy = core::run_campaign_diy(uni, design, cfg);
  if (diy.ok()) {
    print_report("Same campaign, do-it-yourself", *diy);
    std::printf("Hub saves %.0f days of enablement lead time.\n",
                diy->enablement_days - via_hub->enablement_days);
  }

  // What the beginner tier may touch on this hub.
  const auto open_for_beginners =
      hub.accessible_nodes(member, edu::LearnerTier::kBeginner);
  std::printf("\nNodes a beginner can use through the hub:");
  for (const auto& n : open_for_beginners) std::printf(" %s", n.c_str());
  std::printf("\n");

  // Denied case: beginner asking for the commercial node.
  core::CampaignConfig denied = cfg;
  denied.node_name = "commercial28";
  denied.tier = edu::LearnerTier::kBeginner;
  const auto refusal = core::run_campaign(hub, member, design, denied);
  if (!refusal.ok()) {
    std::printf("Beginner on commercial28 -> %s\n",
                refusal.status().to_string().c_str());
  }
  return 0;
}
