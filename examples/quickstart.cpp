// Quickstart: take an 8-bit counter from RTL to GDSII on an open PDK.
//
// This is the "hello world" of EuroChip: build a design with the HCL
// builder API, run the reference flow on the sky130-like open node, and
// print the per-step log plus the PPA summary. A real GDSII stream is
// written to ./quickstart_counter.gds.
//
//   ./examples/quickstart
#include <cstdio>

#include "eurochip/flow/flow.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/ir.hpp"
#include "eurochip/util/strings.hpp"
#include "eurochip/util/table.hpp"

using namespace eurochip;

int main() {
  // --- 1. Describe the hardware with the builder API ("HCL"). -------------
  rtl::Module counter("quickstart_counter");
  const auto en = counter.input("en", 1);
  const auto q = counter.reg("q", 8);
  const auto inc = counter.add(counter.sig(q), counter.lit(1, 8));
  counter.set_next(q, counter.mux(counter.sig(en), inc, counter.sig(q)));
  counter.output("count", 8, counter.sig(q));

  std::printf("design '%s': %zu RTL lines\n", counter.name().c_str(),
              counter.rtl_lines());

  // --- 2. Configure the flow for an open PDK. ------------------------------
  flow::FlowConfig cfg;
  cfg.node = pdk::standard_node("sky130ish").value();
  cfg.quality = flow::FlowQuality::kOpen;
  cfg.gds_output_path = "quickstart_counter.gds";

  // --- 3. Run RTL -> GDSII. -------------------------------------------------
  const auto result = flow::run_reference_flow(counter, cfg);
  if (!result.ok()) {
    std::fprintf(stderr, "flow failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  // --- 4. Report. ------------------------------------------------------------
  std::printf("%s\nGDSII written to quickstart_counter.gds\n",
              flow::render_report(*result, cfg).c_str());
  return 0;
}
