// A TinyTapeout-style community shuttle (paper §II / Recommendation 1):
// many small student designs share one die. Each submission runs through
// the real RTL-to-GDSII flow on the open node; the resulting layouts are
// tiled onto a shared shuttle die, one merged GDSII is written, and the
// per-participant cost share is computed — the economics that make
// beginner tape-outs affordable.
//
//   ./examples/community_shuttle
#include <cmath>
#include <cstdio>

#include "eurochip/econ/cost_model.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/gds/gds.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/strings.hpp"
#include "eurochip/util/table.hpp"

using namespace eurochip;

int main() {
  const auto node = pdk::standard_node("sky130ish").value();

  // The shuttle manifest: what ten student teams submitted.
  std::vector<rtl::Module> submissions;
  submissions.push_back(rtl::designs::counter(8));
  submissions.push_back(rtl::designs::traffic_fsm());
  submissions.push_back(rtl::designs::gray_encoder(8));
  submissions.push_back(rtl::designs::lfsr(8));
  submissions.push_back(rtl::designs::popcount(12));
  submissions.push_back(rtl::designs::adder(12));
  submissions.push_back(rtl::designs::priority_encoder(16));
  submissions.push_back(rtl::designs::shift_register(8, 4));
  submissions.push_back(rtl::designs::alu(8));
  submissions.push_back(rtl::designs::fir_filter(8, 4));

  util::Table t("Community shuttle manifest (sky130ish, open flow)");
  t.set_header({"slot", "design", "cells", "slot_die_mm2", "fmax_MHz",
                "drc"});

  gds::Library shuttle;
  shuttle.name = "COMMUNITY_SHUTTLE";
  gds::Structure top;
  top.name = "SHUTTLE_TOP";

  double total_area_mm2 = 0.0;
  std::int64_t cursor_x = 0;
  std::int64_t cursor_y = 0;
  std::int64_t row_height = 0;
  const int slots_per_row = 4;
  int slot = 0;
  int ok_slots = 0;

  for (auto& design : submissions) {
    flow::FlowConfig cfg;
    cfg.node = node;
    cfg.quality = flow::FlowQuality::kOpen;
    const auto result = flow::run_reference_flow(design, cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "slot %d (%s) failed: %s\n", slot,
                   design.name().c_str(),
                   result.status().to_string().c_str());
      ++slot;
      continue;
    }
    const auto& placed = *result->artifacts.placed;
    const util::Rect die = placed.floorplan.die();

    // Tile the slot onto the shuttle grid (translate all rectangles).
    if (slot % slots_per_row == 0 && slot != 0) {
      cursor_x = 0;
      cursor_y += row_height + 20000;
      row_height = 0;
    }
    const gds::Library sub =
        gds::layout_to_gds(placed, design.name());
    for (const gds::Boundary& b : sub.structures[0].boundaries) {
      gds::Boundary moved = b;
      for (util::Point& p : moved.points) {
        p.x += cursor_x;
        p.y += cursor_y;
      }
      top.boundaries.push_back(std::move(moved));
    }
    cursor_x += die.width() + 20000;
    row_height = std::max(row_height, die.height());

    total_area_mm2 += result->ppa.die_area_mm2;
    t.add_row({std::to_string(slot), design.name(),
               std::to_string(result->ppa.cell_count),
               util::fmt(result->ppa.die_area_mm2, 4),
               util::fmt(result->ppa.fmax_mhz, 0),
               result->ppa.drc_violations == 0 ? "clean" : "DIRTY"});
    ++slot;
    ++ok_slots;
  }
  shuttle.structures.push_back(std::move(top));
  std::printf("%s\n", t.render().c_str());

  // Economics: what one shared shuttle costs vs ten individual runs.
  const econ::MpwCostModel mpw;
  const double shared_cost =
      mpw.slot_cost_keur(node, total_area_mm2, econ::europractice_like());
  double individual_cost = 0.0;
  // Individually, each team pays the 1 mm^2 minimum slot granularity.
  for (int i = 0; i < ok_slots; ++i) {
    individual_cost +=
        mpw.slot_cost_keur(node, total_area_mm2 / ok_slots,
                           econ::europractice_like());
  }
  util::Table e("Shuttle economics");
  e.set_header({"metric", "value"});
  e.add_row({"participants", std::to_string(ok_slots)});
  e.add_row({"total silicon (mm2)", util::fmt(total_area_mm2, 3)});
  e.add_row({"one shared shuttle (kEUR)", util::fmt(shared_cost, 2)});
  e.add_row({"ten individual runs (kEUR)", util::fmt(individual_cost, 2)});
  e.add_row({"cost per participant, shared (kEUR)",
             util::fmt(shared_cost / ok_slots, 3)});
  std::printf("%s\n", e.render().c_str());

  const auto status = gds::write_file(shuttle, "community_shuttle.gds");
  if (!status.ok()) {
    std::fprintf(stderr, "GDS write failed: %s\n",
                 status.to_string().c_str());
    return 1;
  }
  const auto bytes = gds::write(shuttle);
  std::printf("Merged shuttle GDSII: %zu boundaries, %s -> "
              "community_shuttle.gds\n",
              shuttle.structures[0].boundaries.size(),
              util::fmt_si(static_cast<double>(bytes.size()), 1).c_str());
  return 0;
}
