// PPA exploration across technology nodes: the scenario a research group
// faces when choosing a target technology (paper §III-C points out that
// budget rules usually forbid this kind of multi-node experimentation on
// real shuttles — here it costs nothing).
//
// Runs a 16-bit ALU + datapath through the reference flow on every node in
// the standard registry and prints the area/frequency/power/design-cost
// trade-off table, plus both flow presets on the home node.
//
//   ./examples/alu_ppa_explorer
#include <cstdio>

#include "eurochip/econ/cost_model.hpp"
#include "eurochip/flow/flow.hpp"
#include "eurochip/pdk/registry.hpp"
#include "eurochip/rtl/designs.hpp"
#include "eurochip/util/strings.hpp"
#include "eurochip/util/table.hpp"

using namespace eurochip;

int main() {
  const rtl::Module alu = rtl::designs::alu(16);
  const auto cost_model = econ::DesignCostModel::paper_baseline();

  util::Table table("16-bit ALU across technology nodes (open flow preset)");
  table.set_header({"node", "nm", "cells", "area_um2", "fmax_MHz", "power_uW",
                    "die_mm2", "NRE_M$"});

  for (const auto& node : pdk::standard_nodes()) {
    flow::FlowConfig cfg;
    cfg.node = node;
    cfg.quality = flow::FlowQuality::kOpen;
    const auto result = flow::run_reference_flow(alu, cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", node.name.c_str(),
                   result.status().to_string().c_str());
      continue;
    }
    const auto& ppa = result->ppa;
    table.add_row({node.name, std::to_string(node.feature_nm),
                   std::to_string(ppa.cell_count), util::fmt(ppa.area_um2, 1),
                   util::fmt(ppa.fmax_mhz, 1), util::fmt(ppa.power_uw, 1),
                   util::fmt(ppa.die_area_mm2, 4),
                   util::fmt(cost_model.cost_musd(node.feature_nm), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  // Open vs commercial effort on the home node.
  util::Table presets("Flow presets on sky130ish");
  presets.set_header({"preset", "cells", "area_um2", "fmax_MHz", "runtime_ms"});
  for (flow::FlowQuality quality :
       {flow::FlowQuality::kOpen, flow::FlowQuality::kCommercial}) {
    flow::FlowConfig cfg;
    cfg.node = pdk::standard_node("sky130ish").value();
    cfg.quality = quality;
    const auto result = flow::run_reference_flow(alu, cfg);
    if (!result.ok()) continue;
    presets.add_row({flow::to_string(quality),
                     std::to_string(result->ppa.cell_count),
                     util::fmt(result->ppa.area_um2, 1),
                     util::fmt(result->ppa.fmax_mhz, 1),
                     util::fmt(result->total_runtime_ms, 1)});
  }
  std::printf("%s", presets.render().c_str());
  return 0;
}
