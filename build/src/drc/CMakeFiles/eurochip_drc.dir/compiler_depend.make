# Empty compiler generated dependencies file for eurochip_drc.
# This may be replaced when dependencies are built.
