file(REMOVE_RECURSE
  "CMakeFiles/eurochip_drc.dir/checker.cpp.o"
  "CMakeFiles/eurochip_drc.dir/checker.cpp.o.d"
  "libeurochip_drc.a"
  "libeurochip_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
