file(REMOVE_RECURSE
  "libeurochip_drc.a"
)
