file(REMOVE_RECURSE
  "libeurochip_power.a"
)
