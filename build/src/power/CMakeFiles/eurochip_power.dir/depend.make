# Empty dependencies file for eurochip_power.
# This may be replaced when dependencies are built.
