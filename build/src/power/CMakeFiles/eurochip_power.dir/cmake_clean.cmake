file(REMOVE_RECURSE
  "CMakeFiles/eurochip_power.dir/power.cpp.o"
  "CMakeFiles/eurochip_power.dir/power.cpp.o.d"
  "libeurochip_power.a"
  "libeurochip_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
