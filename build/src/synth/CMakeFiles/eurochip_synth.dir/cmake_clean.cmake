file(REMOVE_RECURSE
  "CMakeFiles/eurochip_synth.dir/aig.cpp.o"
  "CMakeFiles/eurochip_synth.dir/aig.cpp.o.d"
  "CMakeFiles/eurochip_synth.dir/elaborate.cpp.o"
  "CMakeFiles/eurochip_synth.dir/elaborate.cpp.o.d"
  "CMakeFiles/eurochip_synth.dir/lutmap.cpp.o"
  "CMakeFiles/eurochip_synth.dir/lutmap.cpp.o.d"
  "CMakeFiles/eurochip_synth.dir/mapper.cpp.o"
  "CMakeFiles/eurochip_synth.dir/mapper.cpp.o.d"
  "CMakeFiles/eurochip_synth.dir/netopt.cpp.o"
  "CMakeFiles/eurochip_synth.dir/netopt.cpp.o.d"
  "CMakeFiles/eurochip_synth.dir/opt.cpp.o"
  "CMakeFiles/eurochip_synth.dir/opt.cpp.o.d"
  "CMakeFiles/eurochip_synth.dir/scan.cpp.o"
  "CMakeFiles/eurochip_synth.dir/scan.cpp.o.d"
  "libeurochip_synth.a"
  "libeurochip_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
