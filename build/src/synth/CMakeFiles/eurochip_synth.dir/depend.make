# Empty dependencies file for eurochip_synth.
# This may be replaced when dependencies are built.
