
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/aig.cpp" "src/synth/CMakeFiles/eurochip_synth.dir/aig.cpp.o" "gcc" "src/synth/CMakeFiles/eurochip_synth.dir/aig.cpp.o.d"
  "/root/repo/src/synth/elaborate.cpp" "src/synth/CMakeFiles/eurochip_synth.dir/elaborate.cpp.o" "gcc" "src/synth/CMakeFiles/eurochip_synth.dir/elaborate.cpp.o.d"
  "/root/repo/src/synth/lutmap.cpp" "src/synth/CMakeFiles/eurochip_synth.dir/lutmap.cpp.o" "gcc" "src/synth/CMakeFiles/eurochip_synth.dir/lutmap.cpp.o.d"
  "/root/repo/src/synth/mapper.cpp" "src/synth/CMakeFiles/eurochip_synth.dir/mapper.cpp.o" "gcc" "src/synth/CMakeFiles/eurochip_synth.dir/mapper.cpp.o.d"
  "/root/repo/src/synth/netopt.cpp" "src/synth/CMakeFiles/eurochip_synth.dir/netopt.cpp.o" "gcc" "src/synth/CMakeFiles/eurochip_synth.dir/netopt.cpp.o.d"
  "/root/repo/src/synth/opt.cpp" "src/synth/CMakeFiles/eurochip_synth.dir/opt.cpp.o" "gcc" "src/synth/CMakeFiles/eurochip_synth.dir/opt.cpp.o.d"
  "/root/repo/src/synth/scan.cpp" "src/synth/CMakeFiles/eurochip_synth.dir/scan.cpp.o" "gcc" "src/synth/CMakeFiles/eurochip_synth.dir/scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/eurochip_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/eurochip_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eurochip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
