file(REMOVE_RECURSE
  "libeurochip_synth.a"
)
