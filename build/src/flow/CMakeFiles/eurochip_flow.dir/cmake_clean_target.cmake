file(REMOVE_RECURSE
  "libeurochip_flow.a"
)
