file(REMOVE_RECURSE
  "CMakeFiles/eurochip_flow.dir/flow.cpp.o"
  "CMakeFiles/eurochip_flow.dir/flow.cpp.o.d"
  "libeurochip_flow.a"
  "libeurochip_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
