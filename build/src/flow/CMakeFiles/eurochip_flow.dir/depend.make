# Empty dependencies file for eurochip_flow.
# This may be replaced when dependencies are built.
