file(REMOVE_RECURSE
  "libeurochip_gds.a"
)
