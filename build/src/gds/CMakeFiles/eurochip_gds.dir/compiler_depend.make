# Empty compiler generated dependencies file for eurochip_gds.
# This may be replaced when dependencies are built.
