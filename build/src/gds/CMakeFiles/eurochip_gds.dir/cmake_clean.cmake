file(REMOVE_RECURSE
  "CMakeFiles/eurochip_gds.dir/gds.cpp.o"
  "CMakeFiles/eurochip_gds.dir/gds.cpp.o.d"
  "libeurochip_gds.a"
  "libeurochip_gds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_gds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
