file(REMOVE_RECURSE
  "libeurochip_rtl.a"
)
