
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/designs.cpp" "src/rtl/CMakeFiles/eurochip_rtl.dir/designs.cpp.o" "gcc" "src/rtl/CMakeFiles/eurochip_rtl.dir/designs.cpp.o.d"
  "/root/repo/src/rtl/hls.cpp" "src/rtl/CMakeFiles/eurochip_rtl.dir/hls.cpp.o" "gcc" "src/rtl/CMakeFiles/eurochip_rtl.dir/hls.cpp.o.d"
  "/root/repo/src/rtl/ir.cpp" "src/rtl/CMakeFiles/eurochip_rtl.dir/ir.cpp.o" "gcc" "src/rtl/CMakeFiles/eurochip_rtl.dir/ir.cpp.o.d"
  "/root/repo/src/rtl/simulator.cpp" "src/rtl/CMakeFiles/eurochip_rtl.dir/simulator.cpp.o" "gcc" "src/rtl/CMakeFiles/eurochip_rtl.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eurochip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
