file(REMOVE_RECURSE
  "CMakeFiles/eurochip_rtl.dir/designs.cpp.o"
  "CMakeFiles/eurochip_rtl.dir/designs.cpp.o.d"
  "CMakeFiles/eurochip_rtl.dir/hls.cpp.o"
  "CMakeFiles/eurochip_rtl.dir/hls.cpp.o.d"
  "CMakeFiles/eurochip_rtl.dir/ir.cpp.o"
  "CMakeFiles/eurochip_rtl.dir/ir.cpp.o.d"
  "CMakeFiles/eurochip_rtl.dir/simulator.cpp.o"
  "CMakeFiles/eurochip_rtl.dir/simulator.cpp.o.d"
  "libeurochip_rtl.a"
  "libeurochip_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
