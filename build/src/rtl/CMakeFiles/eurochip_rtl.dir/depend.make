# Empty dependencies file for eurochip_rtl.
# This may be replaced when dependencies are built.
