file(REMOVE_RECURSE
  "libeurochip_econ.a"
)
