file(REMOVE_RECURSE
  "CMakeFiles/eurochip_econ.dir/cost_model.cpp.o"
  "CMakeFiles/eurochip_econ.dir/cost_model.cpp.o.d"
  "CMakeFiles/eurochip_econ.dir/value_chain.cpp.o"
  "CMakeFiles/eurochip_econ.dir/value_chain.cpp.o.d"
  "CMakeFiles/eurochip_econ.dir/yield.cpp.o"
  "CMakeFiles/eurochip_econ.dir/yield.cpp.o.d"
  "libeurochip_econ.a"
  "libeurochip_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
