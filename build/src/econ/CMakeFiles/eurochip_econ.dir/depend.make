# Empty dependencies file for eurochip_econ.
# This may be replaced when dependencies are built.
