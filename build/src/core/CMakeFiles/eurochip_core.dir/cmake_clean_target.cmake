file(REMOVE_RECURSE
  "libeurochip_core.a"
)
