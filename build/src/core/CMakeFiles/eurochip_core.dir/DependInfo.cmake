
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/eurochip_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/eurochip_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/enablement.cpp" "src/core/CMakeFiles/eurochip_core.dir/enablement.cpp.o" "gcc" "src/core/CMakeFiles/eurochip_core.dir/enablement.cpp.o.d"
  "/root/repo/src/core/ip_reuse.cpp" "src/core/CMakeFiles/eurochip_core.dir/ip_reuse.cpp.o" "gcc" "src/core/CMakeFiles/eurochip_core.dir/ip_reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/eurochip_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/eurochip_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/edu/CMakeFiles/eurochip_edu.dir/DependInfo.cmake"
  "/root/repo/build/src/pdk/CMakeFiles/eurochip_pdk.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/eurochip_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/eurochip_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eurochip_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gds/CMakeFiles/eurochip_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/drc/CMakeFiles/eurochip_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/eurochip_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eurochip_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/eurochip_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/eurochip_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/eurochip_place.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/eurochip_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
