# Empty compiler generated dependencies file for eurochip_core.
# This may be replaced when dependencies are built.
