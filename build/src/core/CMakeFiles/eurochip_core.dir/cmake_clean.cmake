file(REMOVE_RECURSE
  "CMakeFiles/eurochip_core.dir/campaign.cpp.o"
  "CMakeFiles/eurochip_core.dir/campaign.cpp.o.d"
  "CMakeFiles/eurochip_core.dir/enablement.cpp.o"
  "CMakeFiles/eurochip_core.dir/enablement.cpp.o.d"
  "CMakeFiles/eurochip_core.dir/ip_reuse.cpp.o"
  "CMakeFiles/eurochip_core.dir/ip_reuse.cpp.o.d"
  "libeurochip_core.a"
  "libeurochip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
