file(REMOVE_RECURSE
  "libeurochip_place.a"
)
