file(REMOVE_RECURSE
  "CMakeFiles/eurochip_place.dir/def.cpp.o"
  "CMakeFiles/eurochip_place.dir/def.cpp.o.d"
  "CMakeFiles/eurochip_place.dir/floorplan.cpp.o"
  "CMakeFiles/eurochip_place.dir/floorplan.cpp.o.d"
  "CMakeFiles/eurochip_place.dir/placer.cpp.o"
  "CMakeFiles/eurochip_place.dir/placer.cpp.o.d"
  "libeurochip_place.a"
  "libeurochip_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
