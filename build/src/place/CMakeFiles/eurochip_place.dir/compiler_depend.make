# Empty compiler generated dependencies file for eurochip_place.
# This may be replaced when dependencies are built.
