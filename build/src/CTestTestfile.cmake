# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netlist")
subdirs("rtl")
subdirs("pdk")
subdirs("synth")
subdirs("place")
subdirs("route")
subdirs("timing")
subdirs("power")
subdirs("drc")
subdirs("cts")
subdirs("gds")
subdirs("flow")
subdirs("econ")
subdirs("edu")
subdirs("analog")
subdirs("core")
