file(REMOVE_RECURSE
  "libeurochip_route.a"
)
