# Empty dependencies file for eurochip_route.
# This may be replaced when dependencies are built.
