file(REMOVE_RECURSE
  "CMakeFiles/eurochip_route.dir/router.cpp.o"
  "CMakeFiles/eurochip_route.dir/router.cpp.o.d"
  "libeurochip_route.a"
  "libeurochip_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
