file(REMOVE_RECURSE
  "CMakeFiles/eurochip_edu.dir/pipeline.cpp.o"
  "CMakeFiles/eurochip_edu.dir/pipeline.cpp.o.d"
  "CMakeFiles/eurochip_edu.dir/productivity.cpp.o"
  "CMakeFiles/eurochip_edu.dir/productivity.cpp.o.d"
  "CMakeFiles/eurochip_edu.dir/tiers.cpp.o"
  "CMakeFiles/eurochip_edu.dir/tiers.cpp.o.d"
  "libeurochip_edu.a"
  "libeurochip_edu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_edu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
