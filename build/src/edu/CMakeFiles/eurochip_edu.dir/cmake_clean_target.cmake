file(REMOVE_RECURSE
  "libeurochip_edu.a"
)
