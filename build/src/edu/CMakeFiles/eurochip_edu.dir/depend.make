# Empty dependencies file for eurochip_edu.
# This may be replaced when dependencies are built.
