# Empty compiler generated dependencies file for eurochip_netlist.
# This may be replaced when dependencies are built.
