file(REMOVE_RECURSE
  "libeurochip_netlist.a"
)
