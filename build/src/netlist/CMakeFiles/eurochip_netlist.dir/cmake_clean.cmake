file(REMOVE_RECURSE
  "CMakeFiles/eurochip_netlist.dir/liberty.cpp.o"
  "CMakeFiles/eurochip_netlist.dir/liberty.cpp.o.d"
  "CMakeFiles/eurochip_netlist.dir/library.cpp.o"
  "CMakeFiles/eurochip_netlist.dir/library.cpp.o.d"
  "CMakeFiles/eurochip_netlist.dir/netlist.cpp.o"
  "CMakeFiles/eurochip_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/eurochip_netlist.dir/simulator.cpp.o"
  "CMakeFiles/eurochip_netlist.dir/simulator.cpp.o.d"
  "CMakeFiles/eurochip_netlist.dir/verilog.cpp.o"
  "CMakeFiles/eurochip_netlist.dir/verilog.cpp.o.d"
  "libeurochip_netlist.a"
  "libeurochip_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
