# Empty compiler generated dependencies file for eurochip_timing.
# This may be replaced when dependencies are built.
