
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/sta.cpp" "src/timing/CMakeFiles/eurochip_timing.dir/sta.cpp.o" "gcc" "src/timing/CMakeFiles/eurochip_timing.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/eurochip_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/eurochip_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/eurochip_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/pdk/CMakeFiles/eurochip_pdk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eurochip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
