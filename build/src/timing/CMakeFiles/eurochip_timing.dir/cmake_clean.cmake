file(REMOVE_RECURSE
  "CMakeFiles/eurochip_timing.dir/sta.cpp.o"
  "CMakeFiles/eurochip_timing.dir/sta.cpp.o.d"
  "libeurochip_timing.a"
  "libeurochip_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
