file(REMOVE_RECURSE
  "libeurochip_timing.a"
)
