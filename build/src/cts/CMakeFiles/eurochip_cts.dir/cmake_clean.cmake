file(REMOVE_RECURSE
  "CMakeFiles/eurochip_cts.dir/cts.cpp.o"
  "CMakeFiles/eurochip_cts.dir/cts.cpp.o.d"
  "libeurochip_cts.a"
  "libeurochip_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
