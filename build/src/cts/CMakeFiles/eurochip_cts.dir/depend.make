# Empty dependencies file for eurochip_cts.
# This may be replaced when dependencies are built.
