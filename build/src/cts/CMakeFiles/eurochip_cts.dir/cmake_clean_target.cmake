file(REMOVE_RECURSE
  "libeurochip_cts.a"
)
