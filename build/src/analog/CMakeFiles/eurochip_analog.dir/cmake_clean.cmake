file(REMOVE_RECURSE
  "CMakeFiles/eurochip_analog.dir/device.cpp.o"
  "CMakeFiles/eurochip_analog.dir/device.cpp.o.d"
  "CMakeFiles/eurochip_analog.dir/ota.cpp.o"
  "CMakeFiles/eurochip_analog.dir/ota.cpp.o.d"
  "libeurochip_analog.a"
  "libeurochip_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
