file(REMOVE_RECURSE
  "libeurochip_analog.a"
)
