# Empty dependencies file for eurochip_analog.
# This may be replaced when dependencies are built.
