file(REMOVE_RECURSE
  "libeurochip_pdk.a"
)
