# Empty compiler generated dependencies file for eurochip_pdk.
# This may be replaced when dependencies are built.
