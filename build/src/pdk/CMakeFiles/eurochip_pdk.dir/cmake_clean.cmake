file(REMOVE_RECURSE
  "CMakeFiles/eurochip_pdk.dir/access.cpp.o"
  "CMakeFiles/eurochip_pdk.dir/access.cpp.o.d"
  "CMakeFiles/eurochip_pdk.dir/library_gen.cpp.o"
  "CMakeFiles/eurochip_pdk.dir/library_gen.cpp.o.d"
  "CMakeFiles/eurochip_pdk.dir/registry.cpp.o"
  "CMakeFiles/eurochip_pdk.dir/registry.cpp.o.d"
  "libeurochip_pdk.a"
  "libeurochip_pdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_pdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
