file(REMOVE_RECURSE
  "libeurochip_util.a"
)
