# Empty dependencies file for eurochip_util.
# This may be replaced when dependencies are built.
