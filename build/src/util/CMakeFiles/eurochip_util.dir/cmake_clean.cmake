file(REMOVE_RECURSE
  "CMakeFiles/eurochip_util.dir/log.cpp.o"
  "CMakeFiles/eurochip_util.dir/log.cpp.o.d"
  "CMakeFiles/eurochip_util.dir/result.cpp.o"
  "CMakeFiles/eurochip_util.dir/result.cpp.o.d"
  "CMakeFiles/eurochip_util.dir/rng.cpp.o"
  "CMakeFiles/eurochip_util.dir/rng.cpp.o.d"
  "CMakeFiles/eurochip_util.dir/stats.cpp.o"
  "CMakeFiles/eurochip_util.dir/stats.cpp.o.d"
  "CMakeFiles/eurochip_util.dir/strings.cpp.o"
  "CMakeFiles/eurochip_util.dir/strings.cpp.o.d"
  "CMakeFiles/eurochip_util.dir/table.cpp.o"
  "CMakeFiles/eurochip_util.dir/table.cpp.o.d"
  "libeurochip_util.a"
  "libeurochip_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eurochip_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
