# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/pdk_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/drc_gds_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/econ_test[1]_include.cmake")
include("/root/repo/build/tests/edu_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
include("/root/repo/build/tests/cts_test[1]_include.cmake")
include("/root/repo/build/tests/hls_test[1]_include.cmake")
include("/root/repo/build/tests/yield_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/liberty_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/netopt_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/ip_def_test[1]_include.cmake")
include("/root/repo/build/tests/analog_test[1]_include.cmake")
include("/root/repo/build/tests/lutmap_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
