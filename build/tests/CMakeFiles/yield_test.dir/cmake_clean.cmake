file(REMOVE_RECURSE
  "CMakeFiles/yield_test.dir/yield_test.cpp.o"
  "CMakeFiles/yield_test.dir/yield_test.cpp.o.d"
  "yield_test"
  "yield_test.pdb"
  "yield_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
