# Empty dependencies file for yield_test.
# This may be replaced when dependencies are built.
