# Empty dependencies file for ip_def_test.
# This may be replaced when dependencies are built.
