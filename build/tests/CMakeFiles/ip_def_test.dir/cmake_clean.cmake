file(REMOVE_RECURSE
  "CMakeFiles/ip_def_test.dir/ip_def_test.cpp.o"
  "CMakeFiles/ip_def_test.dir/ip_def_test.cpp.o.d"
  "ip_def_test"
  "ip_def_test.pdb"
  "ip_def_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_def_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
