file(REMOVE_RECURSE
  "CMakeFiles/lutmap_test.dir/lutmap_test.cpp.o"
  "CMakeFiles/lutmap_test.dir/lutmap_test.cpp.o.d"
  "lutmap_test"
  "lutmap_test.pdb"
  "lutmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lutmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
