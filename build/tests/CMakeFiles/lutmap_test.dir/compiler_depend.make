# Empty compiler generated dependencies file for lutmap_test.
# This may be replaced when dependencies are built.
