# Empty compiler generated dependencies file for pdk_test.
# This may be replaced when dependencies are built.
