file(REMOVE_RECURSE
  "CMakeFiles/pdk_test.dir/pdk_test.cpp.o"
  "CMakeFiles/pdk_test.dir/pdk_test.cpp.o.d"
  "pdk_test"
  "pdk_test.pdb"
  "pdk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
