# Empty dependencies file for netopt_test.
# This may be replaced when dependencies are built.
