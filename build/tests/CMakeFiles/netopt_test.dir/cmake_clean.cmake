file(REMOVE_RECURSE
  "CMakeFiles/netopt_test.dir/netopt_test.cpp.o"
  "CMakeFiles/netopt_test.dir/netopt_test.cpp.o.d"
  "netopt_test"
  "netopt_test.pdb"
  "netopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
