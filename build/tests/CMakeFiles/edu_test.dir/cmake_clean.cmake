file(REMOVE_RECURSE
  "CMakeFiles/edu_test.dir/edu_test.cpp.o"
  "CMakeFiles/edu_test.dir/edu_test.cpp.o.d"
  "edu_test"
  "edu_test.pdb"
  "edu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
