# Empty compiler generated dependencies file for edu_test.
# This may be replaced when dependencies are built.
