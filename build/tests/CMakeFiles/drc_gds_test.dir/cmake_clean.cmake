file(REMOVE_RECURSE
  "CMakeFiles/drc_gds_test.dir/drc_gds_test.cpp.o"
  "CMakeFiles/drc_gds_test.dir/drc_gds_test.cpp.o.d"
  "drc_gds_test"
  "drc_gds_test.pdb"
  "drc_gds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drc_gds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
