# Empty dependencies file for drc_gds_test.
# This may be replaced when dependencies are built.
