file(REMOVE_RECURSE
  "CMakeFiles/alu_ppa_explorer.dir/alu_ppa_explorer.cpp.o"
  "CMakeFiles/alu_ppa_explorer.dir/alu_ppa_explorer.cpp.o.d"
  "alu_ppa_explorer"
  "alu_ppa_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alu_ppa_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
