# Empty dependencies file for alu_ppa_explorer.
# This may be replaced when dependencies are built.
