# Empty compiler generated dependencies file for alu_ppa_explorer.
# This may be replaced when dependencies are built.
