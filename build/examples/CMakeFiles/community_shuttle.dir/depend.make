# Empty dependencies file for community_shuttle.
# This may be replaced when dependencies are built.
