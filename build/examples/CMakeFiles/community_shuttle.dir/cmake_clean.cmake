file(REMOVE_RECURSE
  "CMakeFiles/community_shuttle.dir/community_shuttle.cpp.o"
  "CMakeFiles/community_shuttle.dir/community_shuttle.cpp.o.d"
  "community_shuttle"
  "community_shuttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_shuttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
