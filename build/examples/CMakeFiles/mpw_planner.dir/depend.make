# Empty dependencies file for mpw_planner.
# This may be replaced when dependencies are built.
