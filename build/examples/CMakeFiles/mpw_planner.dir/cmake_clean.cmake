file(REMOVE_RECURSE
  "CMakeFiles/mpw_planner.dir/mpw_planner.cpp.o"
  "CMakeFiles/mpw_planner.dir/mpw_planner.cpp.o.d"
  "mpw_planner"
  "mpw_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpw_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
