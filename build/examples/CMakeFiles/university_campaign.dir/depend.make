# Empty dependencies file for university_campaign.
# This may be replaced when dependencies are built.
