file(REMOVE_RECURSE
  "CMakeFiles/university_campaign.dir/university_campaign.cpp.o"
  "CMakeFiles/university_campaign.dir/university_campaign.cpp.o.d"
  "university_campaign"
  "university_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
