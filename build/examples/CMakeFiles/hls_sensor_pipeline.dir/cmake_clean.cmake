file(REMOVE_RECURSE
  "CMakeFiles/hls_sensor_pipeline.dir/hls_sensor_pipeline.cpp.o"
  "CMakeFiles/hls_sensor_pipeline.dir/hls_sensor_pipeline.cpp.o.d"
  "hls_sensor_pipeline"
  "hls_sensor_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_sensor_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
