# Empty dependencies file for hls_sensor_pipeline.
# This may be replaced when dependencies are built.
