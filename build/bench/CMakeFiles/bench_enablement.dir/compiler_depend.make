# Empty compiler generated dependencies file for bench_enablement.
# This may be replaced when dependencies are built.
