file(REMOVE_RECURSE
  "CMakeFiles/bench_enablement.dir/bench_enablement.cpp.o"
  "CMakeFiles/bench_enablement.dir/bench_enablement.cpp.o.d"
  "bench_enablement"
  "bench_enablement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enablement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
