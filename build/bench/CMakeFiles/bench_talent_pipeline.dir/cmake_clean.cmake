file(REMOVE_RECURSE
  "CMakeFiles/bench_talent_pipeline.dir/bench_talent_pipeline.cpp.o"
  "CMakeFiles/bench_talent_pipeline.dir/bench_talent_pipeline.cpp.o.d"
  "bench_talent_pipeline"
  "bench_talent_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_talent_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
