# Empty dependencies file for bench_ip_reuse.
# This may be replaced when dependencies are built.
