file(REMOVE_RECURSE
  "CMakeFiles/bench_ip_reuse.dir/bench_ip_reuse.cpp.o"
  "CMakeFiles/bench_ip_reuse.dir/bench_ip_reuse.cpp.o.d"
  "bench_ip_reuse"
  "bench_ip_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ip_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
