file(REMOVE_RECURSE
  "CMakeFiles/bench_chiplet.dir/bench_chiplet.cpp.o"
  "CMakeFiles/bench_chiplet.dir/bench_chiplet.cpp.o.d"
  "bench_chiplet"
  "bench_chiplet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chiplet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
