# Empty dependencies file for bench_chiplet.
# This may be replaced when dependencies are built.
