file(REMOVE_RECURSE
  "CMakeFiles/bench_analog.dir/bench_analog.cpp.o"
  "CMakeFiles/bench_analog.dir/bench_analog.cpp.o.d"
  "bench_analog"
  "bench_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
