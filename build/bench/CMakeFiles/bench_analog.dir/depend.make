# Empty dependencies file for bench_analog.
# This may be replaced when dependencies are built.
