file(REMOVE_RECURSE
  "CMakeFiles/bench_design_cost.dir/bench_design_cost.cpp.o"
  "CMakeFiles/bench_design_cost.dir/bench_design_cost.cpp.o.d"
  "bench_design_cost"
  "bench_design_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
