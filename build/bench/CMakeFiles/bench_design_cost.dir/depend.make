# Empty dependencies file for bench_design_cost.
# This may be replaced when dependencies are built.
