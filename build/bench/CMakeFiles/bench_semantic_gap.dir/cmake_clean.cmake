file(REMOVE_RECURSE
  "CMakeFiles/bench_semantic_gap.dir/bench_semantic_gap.cpp.o"
  "CMakeFiles/bench_semantic_gap.dir/bench_semantic_gap.cpp.o.d"
  "bench_semantic_gap"
  "bench_semantic_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semantic_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
