# Empty dependencies file for bench_semantic_gap.
# This may be replaced when dependencies are built.
