file(REMOVE_RECURSE
  "CMakeFiles/bench_pdk_access.dir/bench_pdk_access.cpp.o"
  "CMakeFiles/bench_pdk_access.dir/bench_pdk_access.cpp.o.d"
  "bench_pdk_access"
  "bench_pdk_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdk_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
