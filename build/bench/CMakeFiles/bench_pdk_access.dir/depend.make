# Empty dependencies file for bench_pdk_access.
# This may be replaced when dependencies are built.
