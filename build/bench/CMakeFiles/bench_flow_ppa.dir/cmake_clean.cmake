file(REMOVE_RECURSE
  "CMakeFiles/bench_flow_ppa.dir/bench_flow_ppa.cpp.o"
  "CMakeFiles/bench_flow_ppa.dir/bench_flow_ppa.cpp.o.d"
  "bench_flow_ppa"
  "bench_flow_ppa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_ppa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
