# Empty dependencies file for bench_flow_ppa.
# This may be replaced when dependencies are built.
