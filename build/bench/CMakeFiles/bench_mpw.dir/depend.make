# Empty dependencies file for bench_mpw.
# This may be replaced when dependencies are built.
