file(REMOVE_RECURSE
  "CMakeFiles/bench_mpw.dir/bench_mpw.cpp.o"
  "CMakeFiles/bench_mpw.dir/bench_mpw.cpp.o.d"
  "bench_mpw"
  "bench_mpw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
