file(REMOVE_RECURSE
  "CMakeFiles/bench_productivity.dir/bench_productivity.cpp.o"
  "CMakeFiles/bench_productivity.dir/bench_productivity.cpp.o.d"
  "bench_productivity"
  "bench_productivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_productivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
