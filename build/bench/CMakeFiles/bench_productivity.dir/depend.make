# Empty dependencies file for bench_productivity.
# This may be replaced when dependencies are built.
