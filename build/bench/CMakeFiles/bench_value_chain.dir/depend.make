# Empty dependencies file for bench_value_chain.
# This may be replaced when dependencies are built.
