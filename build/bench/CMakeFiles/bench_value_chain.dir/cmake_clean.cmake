file(REMOVE_RECURSE
  "CMakeFiles/bench_value_chain.dir/bench_value_chain.cpp.o"
  "CMakeFiles/bench_value_chain.dir/bench_value_chain.cpp.o.d"
  "bench_value_chain"
  "bench_value_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
