# Empty compiler generated dependencies file for bench_fpga_coverage.
# This may be replaced when dependencies are built.
