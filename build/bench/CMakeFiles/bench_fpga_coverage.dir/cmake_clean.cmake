file(REMOVE_RECURSE
  "CMakeFiles/bench_fpga_coverage.dir/bench_fpga_coverage.cpp.o"
  "CMakeFiles/bench_fpga_coverage.dir/bench_fpga_coverage.cpp.o.d"
  "bench_fpga_coverage"
  "bench_fpga_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpga_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
