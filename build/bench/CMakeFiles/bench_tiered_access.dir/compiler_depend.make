# Empty compiler generated dependencies file for bench_tiered_access.
# This may be replaced when dependencies are built.
