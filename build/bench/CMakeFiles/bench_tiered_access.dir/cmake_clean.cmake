file(REMOVE_RECURSE
  "CMakeFiles/bench_tiered_access.dir/bench_tiered_access.cpp.o"
  "CMakeFiles/bench_tiered_access.dir/bench_tiered_access.cpp.o.d"
  "bench_tiered_access"
  "bench_tiered_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tiered_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
